//! The durable-event taxonomy: what a driver must persist to restart a
//! process from local state.
//!
//! The sans-I/O engine never touches a disk, so durability is a driver
//! concern — but *what* is worth persisting is a protocol question, and
//! it lives here. A [`DurableEvent`] is one engine-visible fact that,
//! replayed into a fresh [`DagRiderEngine`](crate::DagRiderEngine) in log
//! order, deterministically rebuilds the protocol state that produced the
//! ordered log:
//!
//! * [`DurableEvent::Vertex`] — a vertex the broadcast layer delivered
//!   (or a sync stream replayed). Re-inserting it through the DAG's
//!   buffered path rebuilds the causally-closed DAG without re-running
//!   the original broadcasts, exactly like the rejoin-sync stream.
//! * [`DurableEvent::CoinShare`] — an accepted threshold-coin share.
//!   Any `f + 1` valid shares for a wave combine to the same leader
//!   (§3.4: the coin is *unpredictable but deterministic*), so replaying
//!   the accepted shares re-elects every leader the crashed process knew.
//! * [`DurableEvent::Batch`] — a transaction batch stored for digest
//!   resolution; without it an ordered digest payload could not resolve
//!   to its transactions after restart.
//! * [`DurableEvent::Commit`] — a wave commit `(wave, leader)` from the
//!   ordering layer (Algorithm 3 lines 51–57). Strictly an accelerator:
//!   the vertex + share events already imply every commit, but replaying
//!   commits directly covers waves whose share threshold straddles a
//!   snapshot boundary (the snapshot stores opened leaders, not the
//!   shares that opened them).
//!
//! The encoding is the workspace's strict protocol codec: a one-byte
//! tag, then the event body. Unknown tags and trailing bytes are decode
//! errors, which the store's checksummed framing turns into a truncation
//! point rather than a misparse.

use dagrider_crypto::CoinShare;
use dagrider_types::{Batch, Decode, DecodeError, Encode, ProcessId, Vertex, Wave};

/// One engine-visible durable fact. See the module docs for the role of
/// each variant in crash recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableEvent {
    /// A delivered (or synced) non-genesis vertex.
    Vertex(Vertex),
    /// An accepted threshold-coin share.
    CoinShare(CoinShare),
    /// A batch stored for digest resolution.
    Batch(Batch),
    /// A wave commit: `leader` was elected and committed for `wave`.
    Commit {
        /// The committed wave.
        wave: Wave,
        /// The elected leader process.
        leader: ProcessId,
    },
}

impl Encode for DurableEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            DurableEvent::Vertex(v) => {
                1u8.encode(buf);
                v.encode(buf);
            }
            DurableEvent::CoinShare(s) => {
                2u8.encode(buf);
                s.encode(buf);
            }
            DurableEvent::Batch(b) => {
                3u8.encode(buf);
                b.encode(buf);
            }
            DurableEvent::Commit { wave, leader } => {
                4u8.encode(buf);
                wave.encode(buf);
                leader.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            DurableEvent::Vertex(v) => v.encoded_len(),
            DurableEvent::CoinShare(s) => s.encoded_len(),
            DurableEvent::Batch(b) => b.encoded_len(),
            DurableEvent::Commit { wave, leader } => wave.encoded_len() + leader.encoded_len(),
        }
    }
}

impl Decode for DurableEvent {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            1 => Ok(DurableEvent::Vertex(Vertex::decode(buf)?)),
            2 => Ok(DurableEvent::CoinShare(CoinShare::decode(buf)?)),
            3 => Ok(DurableEvent::Batch(Batch::decode(buf)?)),
            4 => Ok(DurableEvent::Commit {
                wave: Wave::decode(buf)?,
                leader: ProcessId::decode(buf)?,
            }),
            _ => Err(DecodeError::Invalid("unknown durable event tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use dagrider_types::Transaction;

    use super::*;

    #[test]
    fn durable_event_codec_roundtrip() {
        let events = vec![
            DurableEvent::Vertex(Vertex::genesis(ProcessId::new(2))),
            DurableEvent::Batch(Batch::new(
                ProcessId::new(1),
                3,
                vec![Transaction::synthetic(9, 16)],
            )),
            DurableEvent::Commit { wave: Wave::new(5), leader: ProcessId::new(3) },
        ];
        for event in events {
            let bytes = event.to_bytes();
            assert_eq!(bytes.len(), event.encoded_len());
            assert_eq!(DurableEvent::from_bytes(&bytes).expect("roundtrip decodes"), event);
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_rejected() {
        let mut bytes =
            DurableEvent::Commit { wave: Wave::new(1), leader: ProcessId::new(0) }.to_bytes();
        bytes[0] = 9;
        assert!(DurableEvent::from_bytes(&bytes).is_err(), "unknown tag must not decode");
        let mut ok =
            DurableEvent::Commit { wave: Wave::new(1), leader: ProcessId::new(0) }.to_bytes();
        ok.push(0);
        assert!(DurableEvent::from_bytes(&ok).is_err(), "trailing bytes must not decode");
    }
}
