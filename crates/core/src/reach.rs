//! The incremental reachability engine backing [`Dag`](crate::Dag)'s
//! `path` / `strong_path` / `causal_history` / `orphans_below` queries.
//!
//! Every inserted vertex carries two **closure bitsets** over compact
//! `(round, source)` slots: the vertices it reaches through strong edges
//! only (Algorithm 1's `strong_path`), and through strong *and* weak
//! edges (`path`). A closure is computed once, at insert time, by OR-ing
//! the closures of the referenced vertices plus their own slots —
//! O(edges · slots/64) word operations, amortized against every later
//! query — and it is immutable afterwards: a vertex's edges are fixed at
//! creation and causal closure (Claim 1) guarantees every referenced
//! vertex (and hence its finished closure) is present before insertion,
//! so nothing inserted later can extend what an existing vertex reaches.
//!
//! Reachability queries become single bit probes, causal histories become
//! bitset iterations, and the orphan scan of Algorithm 2 line 27 becomes
//! closure subtraction. Garbage collection truncates the slot space (see
//! [`SlotSpace`]) so long-lived DAGs do not accumulate dead bits.

use dagrider_types::{ProcessId, Round, Vertex, VertexRef};

/// A bitset over slot indices, stored as 64-bit words. Grows on demand;
/// absent high slots read as unset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Closure {
    words: Vec<u64>,
}

impl Closure {
    /// Whether `slot` is set.
    pub fn contains(&self, slot: usize) -> bool {
        self.words.get(slot / 64).is_some_and(|word| (word >> (slot % 64)) & 1 == 1)
    }

    /// Sets `slot`.
    pub fn insert(&mut self, slot: usize) {
        let word = slot / 64;
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << (slot % 64);
    }

    /// Flips `slot` (test-only fault injection uses this to desynchronize
    /// the engine from the BFS oracle on purpose).
    pub fn toggle(&mut self, slot: usize) {
        let word = slot / 64;
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
        self.words[word] ^= 1 << (slot % 64);
    }

    /// OR-s `other` into `self` — the closure-composition step of insert.
    pub fn union_with(&mut self, other: &Closure) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (mine, theirs) in self.words.iter_mut().zip(&other.words) {
            *mine |= theirs;
        }
    }

    /// Current width in 64-bit words.
    pub fn width_words(&self) -> usize {
        self.words.len()
    }

    /// Clones this closure at a width of at least `words` zero-filled
    /// entries, in one exact-sized allocation, so a following sequence of
    /// `union_with`/`insert` calls up to that width cannot reallocate.
    pub fn clone_with_width(&self, words: usize) -> Closure {
        let width = words.max(self.words.len());
        let mut out = Vec::with_capacity(width);
        out.extend_from_slice(&self.words);
        out.resize(width, 0);
        Closure { words: out }
    }

    /// Iterates the set slots in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(index, &word)| WordBits { word, base: index * 64 })
    }

    /// Number of set slots.
    #[cfg(test)]
    pub fn count(&self) -> usize {
        self.words.iter().map(|word| word.count_ones() as usize).sum()
    }
}

/// Iterator over the set bits of one word, ascending.
struct WordBits {
    word: u64,
    base: usize,
}

impl Iterator for WordBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

/// The two per-vertex closures.
#[derive(Debug, Clone, Default)]
pub(crate) struct VertexClosures {
    /// Everything reachable through strong edges only (`strong_path`).
    pub strong: Closure,
    /// Everything reachable through strong and weak edges (`path`).
    pub all: Closure,
}

/// Composes the closures of `v` from its referenced vertices' closures:
/// every target that `lookup` resolves (i.e. is present) contributes its
/// own slot plus its whole closure; unresolved targets — garbage-collected
/// or missing — contribute nothing, matching the BFS oracle, which cannot
/// traverse absent vertices either.
pub(crate) fn compose<'a>(
    slots: &SlotSpace,
    v: &Vertex,
    lookup: impl Fn(VertexRef) -> Option<&'a VertexClosures>,
) -> VertexClosures {
    // Resolution is two array probes plus slot arithmetic — cheap enough
    // to run once per edge. A first sizing pass over the (short, in
    // sparse mode) strong-edge list finds the widest predecessor closure
    // and highest edge slot; the first resolved predecessor then *seeds*
    // each bitset by cloning and immediately growing to that final width,
    // so every later `union_with`/`insert` is pure word OR-ing with zero
    // reallocations. Per vertex: two allocations, no sizing churn.
    let mut max_words = 0usize;
    for &edge in v.strong_edges() {
        let (Some(slot), Some(pred)) = (slots.slot(edge), lookup(edge)) else { continue };
        max_words =
            max_words.max(slot / 64 + 1).max(pred.strong.width_words()).max(pred.all.width_words());
    }
    let mut closures: Option<VertexClosures> = None;
    for &edge in v.strong_edges() {
        let (Some(slot), Some(pred)) = (slots.slot(edge), lookup(edge)) else { continue };
        match &mut closures {
            None => {
                let mut seeded = VertexClosures {
                    strong: pred.strong.clone_with_width(max_words),
                    all: pred.all.clone_with_width(max_words),
                };
                seeded.strong.insert(slot);
                seeded.all.insert(slot);
                closures = Some(seeded);
            }
            Some(c) => {
                c.strong.union_with(&pred.strong);
                c.strong.insert(slot);
                c.all.union_with(&pred.all);
                c.all.insert(slot);
            }
        }
    }
    let mut closures = closures.unwrap_or_default();
    for &edge in v.weak_edges() {
        let (Some(slot), Some(pred)) = (slots.slot(edge), lookup(edge)) else { continue };
        closures.all.union_with(&pred.all);
        closures.all.insert(slot);
    }
    closures
}

/// The slot address space mapping `(round, source)` to bit indices.
///
/// Genesis vertices occupy the `n` front slots — they are never pruned
/// and every closure reaches them. Non-genesis rounds are addressed
/// relative to `base`, the lowest representable round:
/// `slot = n + (round - base)·n + source`. Garbage collection advances
/// `base` (and rebases every retained closure), so references below the
/// pruned floor have **no** slot and are rejected in O(1).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotSpace {
    n: usize,
    /// The lowest representable non-genesis round.
    base: u64,
}

impl SlotSpace {
    /// The slot space for an unpruned DAG over `n` processes.
    pub fn new(n: usize) -> Self {
        Self { n, base: 1 }
    }

    /// The lowest representable non-genesis round.
    #[cfg(test)]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The slot of `reference`, or `None` if its round was truncated by
    /// garbage collection.
    pub fn slot(&self, reference: VertexRef) -> Option<usize> {
        if reference.round == Round::GENESIS {
            return Some(reference.source.as_usize());
        }
        let round = reference.round.number();
        if round >= self.base {
            Some(self.n + (round - self.base) as usize * self.n + reference.source.as_usize())
        } else {
            None
        }
    }

    /// The reference occupying `slot` — the inverse of [`SlotSpace::slot`].
    pub fn reference(&self, slot: usize) -> VertexRef {
        if slot < self.n {
            return VertexRef::new(Round::GENESIS, ProcessId::new(slot as u32));
        }
        let offset = slot - self.n;
        VertexRef::new(
            Round::new(self.base + (offset / self.n) as u64),
            ProcessId::new((offset % self.n) as u32),
        )
    }

    /// Advances the base to `new_base` (a no-op if not higher), returning
    /// the number of slots every retained closure must drop.
    pub fn advance_base(&mut self, new_base: u64) -> usize {
        if new_base <= self.base {
            return 0;
        }
        let removed = (new_base - self.base) as usize * self.n;
        self.base = new_base;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_set_probe_and_count() {
        let mut c = Closure::default();
        assert!(!c.contains(0));
        assert!(!c.contains(1000));
        c.insert(3);
        c.insert(64);
        c.insert(130);
        assert!(c.contains(3) && c.contains(64) && c.contains(130));
        assert!(!c.contains(4));
        assert_eq!(c.count(), 3);
        assert_eq!(c.ones().collect::<Vec<_>>(), vec![3, 64, 130]);
    }

    #[test]
    fn closure_union_grows_to_fit() {
        let mut a = Closure::default();
        a.insert(1);
        let mut b = Closure::default();
        b.insert(200);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(200));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn closure_toggle_flips_both_ways() {
        let mut c = Closure::default();
        c.toggle(70);
        assert!(c.contains(70));
        c.toggle(70);
        assert!(!c.contains(70));
    }

    #[test]
    fn slot_space_round_trips_every_reference() {
        let mut slots = SlotSpace::new(4);
        for round in [0u64, 1, 2, 9] {
            for source in 0u32..4 {
                let reference = VertexRef::new(Round::new(round), ProcessId::new(source));
                let slot = slots.slot(reference).unwrap();
                assert_eq!(slots.reference(slot), reference);
            }
        }
        // After a rebase, rounds below the base lose their slots; genesis
        // and retained rounds still round-trip.
        assert_eq!(slots.advance_base(3), 2 * 4);
        assert_eq!(slots.slot(VertexRef::new(Round::new(2), ProcessId::new(0))), None);
        let genesis = VertexRef::new(Round::GENESIS, ProcessId::new(2));
        assert_eq!(slots.reference(slots.slot(genesis).unwrap()), genesis);
        let kept = VertexRef::new(Round::new(5), ProcessId::new(3));
        assert_eq!(slots.reference(slots.slot(kept).unwrap()), kept);
    }

    #[test]
    fn advance_base_is_monotone() {
        let mut slots = SlotSpace::new(4);
        assert_eq!(slots.advance_base(5), 16);
        assert_eq!(slots.advance_base(4), 0, "lower base is a no-op");
        assert_eq!(slots.base(), 5);
    }
}
