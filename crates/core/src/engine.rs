//! The full DAG-Rider process as a **sans-I/O engine**: construction +
//! ordering + coin over a pluggable reliable broadcast, with no knowledge
//! of who drives it.
//!
//! [`DagRiderEngine`] is a pure state machine. Drivers — the deterministic
//! simulator (via the `dagrider-simactor` adapter), the real TCP runtime
//! (`dagrider-net`), or a test harness replaying a recorded run — feed it
//! typed [`EngineInput`]s and route the typed [`EngineOutput`]s it returns.
//! The engine performs no I/O, reads no clocks, and draws no entropy of its
//! own: the current [`Time`] and an explicit RNG are parameters of every
//! call, so identical input sequences produce byte-identical output
//! sequences (see the `engine_determinism` test in `dagrider-simactor`).
//!
//! # The engine/driver contract
//!
//! * **Inputs** — [`EngineInput::Message`] for every payload received from
//!   an authenticated peer, [`EngineInput::Timer`] when a timer requested
//!   via [`EngineOutput::SetTimer`] fires, [`EngineInput::SubmitBlock`] for
//!   client payload (`a_bcast`), and [`EngineInput::SyncVertex`] for state
//!   transfer when a restarted process catches up.
//! * **Outputs** — [`EngineOutput::Send`] (unicast to one peer),
//!   [`EngineOutput::Broadcast`] (to every *other* process — self-routing
//!   is handled inside the engine), [`EngineOutput::SetTimer`], and
//!   [`EngineOutput::Ordered`] for every `a_deliver` in total order.
//!   Outputs must be routed in the order returned: the wire order is part
//!   of the deterministic replay contract.
//! * **Timers** — the engine currently requests no timers of its own;
//!   [`EngineInput::Timer`] runs end-of-turn housekeeping (share flush +
//!   garbage collection), so drivers may safely deliver spurious timers.

use std::collections::{BTreeSet, VecDeque};

use bytes::Bytes;
use dagrider_crypto::{sha256, Coin, CoinKeys, CoinShare, Digest};
use dagrider_rbc::{RbcAction, ReliableBroadcast};
use dagrider_trace::{SharedTracer, TraceEvent, TraceRecord};
use dagrider_types::{
    Batch, BatchDigest, Block, Committee, Decode, DecodeError, Encode, Payload, ProcessId, Round,
    SparseEdgeConfig, Time, Vertex, VertexRef, Wave,
};

use crate::construction::{DagCore, DagEvent};
use crate::dag::Dag;
use crate::durable::DurableEvent;
use crate::ordering::{CommitEvent, Delivery, OrderedVertex, Ordering};

/// The content address of a batch: SHA-256 over its encoded bytes. Wire
/// types live in `dagrider-types` (which cannot depend on the crypto
/// crate), so the digest function lives here, next to its main consumer.
pub fn batch_digest(batch: &Batch) -> BatchDigest {
    BatchDigest::new(*sha256(batch.to_bytes()).as_bytes())
}

/// Timer tag reserved for the missing-batch fetch retry loop.
pub const FETCH_TIMER_TAG: u64 = u64::MAX;
/// Ticks between fetch retries while the head delivery is blocked.
pub const FETCH_RETRY_DELAY: u64 = 16;
/// Fetch rounds per peer before the engine stops re-requesting and waits
/// for a pushed batch (mirrors the sync shortfall protocol's bounded
/// retries).
pub const FETCH_RETRIES: usize = 3;

/// Wire envelope multiplexing the broadcast layer's traffic with the tiny
/// coin-share messages (§5 footnote 1: the coin can piggyback on the DAG;
/// we send shares as their own messages, which costs `O(n)` extra words
/// per wave — asymptotically free next to the broadcasts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeMessage<M> {
    /// A reliable-broadcast protocol message.
    Rbc(M),
    /// A threshold-coin share for some wave.
    Coin(CoinShare),
}

impl<M: Encode> Encode for NodeMessage<M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            NodeMessage::Rbc(m) => {
                0u8.encode(buf);
                m.encode(buf);
            }
            NodeMessage::Coin(s) => {
                1u8.encode(buf);
                s.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            NodeMessage::Rbc(m) => m.encoded_len(),
            NodeMessage::Coin(s) => s.encoded_len(),
        }
    }
}

impl<M: Decode> Decode for NodeMessage<M> {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(NodeMessage::Rbc(M::decode(buf)?)),
            1 => Ok(NodeMessage::Coin(CoinShare::decode(buf)?)),
            _ => Err(DecodeError::Invalid("unknown node message tag")),
        }
    }
}

/// Configuration for a [`DagRiderEngine`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Propose empty blocks when the client queue runs dry (default true;
    /// the paper assumes an infinite block supply).
    pub auto_empty_blocks: bool,
    /// Stop creating vertices after this round so finite runs quiesce
    /// (default: none — run forever).
    pub max_round: Option<Round>,
    /// Seed for the broadcast layer's local randomness.
    pub rbc_seed: u64,
    /// **Ablation only**: build vertices without weak edges, knowingly
    /// breaking Validity (measured in `bench/bin/ablation_weak_edges`).
    pub disable_weak_edges: bool,
    /// Piggyback coin shares on the next vertex broadcast instead of
    /// sending dedicated share messages (§5 footnote 1: "the coin can be
    /// easily implemented as part of the DAG itself"). Must be uniform
    /// across the committee. Shares still go out as dedicated messages
    /// when no further vertex will carry them (end of a finite run).
    pub piggyback_coin: bool,
    /// Garbage-collect DAG rounds this far below the fully-delivered
    /// prefix (`None` = keep everything; real deployments prune).
    pub gc_depth: Option<u64>,
    /// Ring capacity for the structured event tracer (`None` = tracing
    /// off, the default: the hot path then pays a single branch).
    pub trace_capacity: Option<usize>,
    /// Sparse-edge mode (Clownfish-style): vertices carry a deterministic
    /// `k`-sample of strong edges and direct commits clear the adjusted
    /// `max(f + 1, n - k + 1)` threshold. Must be uniform across the committee.
    /// `None` — or `k ≥ quorum` — is the dense paper protocol.
    pub sparse_edges: Option<SparseEdgeConfig>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            auto_empty_blocks: true,
            max_round: None,
            rbc_seed: 0,
            disable_weak_edges: false,
            piggyback_coin: false,
            gc_depth: None,
            trace_capacity: None,
            sparse_edges: None,
        }
    }
}

impl NodeConfig {
    /// Caps vertex creation at `round`.
    pub fn with_max_round(mut self, round: u64) -> Self {
        self.max_round = Some(Round::new(round));
        self
    }

    /// Sets whether empty blocks are auto-proposed when starved.
    pub fn with_auto_empty_blocks(mut self, auto: bool) -> Self {
        self.auto_empty_blocks = auto;
        self
    }

    /// Piggybacks coin shares on vertex broadcasts (§5 footnote 1).
    pub fn with_piggyback_coin(mut self) -> Self {
        self.piggyback_coin = true;
        self
    }

    /// Enables garbage collection `depth` rounds behind the delivered
    /// prefix.
    pub fn with_gc_depth(mut self, depth: u64) -> Self {
        self.gc_depth = Some(depth);
        self
    }

    /// Enables structured event tracing with a ring buffer of `capacity`
    /// records per node.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Enables sparse-edge mode: each vertex samples `k` strong edges
    /// deterministically under `seed`. Must be uniform across the
    /// committee.
    pub fn with_sparse_edges(mut self, k: usize, seed: u64) -> Self {
        self.sparse_edges = Some(SparseEdgeConfig::new(k, seed));
        self
    }
}

/// The reliable-broadcast payload: a vertex plus any piggybacked coin
/// shares (§5 footnote 1). With piggybacking off the share list is empty
/// and costs one byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexPayload {
    /// The DAG vertex.
    pub vertex: Vertex,
    /// Coin shares revealed by the vertex's creator (normally 0 or 1; the
    /// share for wave `w` rides the round `4w + 1` vertex).
    pub coin_shares: Vec<CoinShare>,
}

impl Encode for VertexPayload {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.vertex.encode(buf);
        self.coin_shares.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.vertex.encoded_len() + self.coin_shares.encoded_len()
    }
}

impl Decode for VertexPayload {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            vertex: dagrider_types::Vertex::decode(buf)?,
            coin_shares: Vec::<CoinShare>::decode(buf)?,
        })
    }
}

/// A typed input to the engine. All variants are data, never callbacks:
/// an input sequence can be recorded, serialized, and replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineInput {
    /// Bytes received from the authenticated peer `from`. The payload is
    /// untrusted wire input ([`NodeMessage`] encoding expected).
    Message {
        /// The authenticated sender (§2: recipients "can verify the
        /// sender's identity"; transports authenticate connections).
        from: ProcessId,
        /// The raw received bytes.
        payload: Vec<u8>,
    },
    /// A timer requested via [`EngineOutput::SetTimer`] fired.
    Timer {
        /// The tag given when the timer was set.
        tag: u64,
    },
    /// `a_bcast(b, r)`: a client block to atomically broadcast
    /// (Algorithm 3 lines 32–33).
    SubmitBlock(Block),
    /// State transfer: a vertex replayed by a peer so a restarted process
    /// can rebuild its DAG without re-running the original broadcasts.
    /// The vertex is structurally validated like any delivery; in this
    /// reproduction vertices carry no creator signature, so the embedded
    /// `(source, round)` is taken as attested (a production deployment
    /// would verify a signature here).
    SyncVertex(Vertex),
    /// `a_bcast` in digest mode: batch digests the worker layer finished
    /// disseminating, ready to ride the next vertex as its payload.
    SubmitDigests(Vec<BatchDigest>),
    /// A batch became available in the local batch store (own assembly, a
    /// peer's dissemination stream, or a completed fetch). Unblocks any
    /// pending deliveries waiting on its digest.
    BatchStored(Batch),
    /// Wire input whose expensive checks (SHA-256 payload digests, coin
    /// DLEQ proofs) a *trusted driver* already performed off the consensus
    /// thread. The engine skips re-verification, so only drivers that
    /// actually ran the checks may construct this variant — an invariant
    /// enforced by `cargo xtask lint` (only `dagrider-net`'s verification
    /// pool and the test drivers may name it outside this crate).
    PreVerified(VerifiedInput),
}

/// The payload of [`EngineInput::PreVerified`]: one unit of wire input with
/// its verification artifacts attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifiedInput {
    /// Encoded [`NodeMessage`] bytes (expected to decode to an RBC
    /// message) plus the pre-computed SHA-256 digest of the RBC payload,
    /// exactly as [`ReliableBroadcast::message_digest`] would return for
    /// the decoded message. A `None` digest (or bytes that decode to a
    /// coin share) falls back to the unverified handling path.
    Message {
        /// The authenticated sender.
        from: ProcessId,
        /// The raw received bytes.
        payload: Vec<u8>,
        /// Pre-computed digest of the decoded RBC payload.
        digest: Option<Digest>,
    },
    /// A coin share whose DLEQ proof already verified against the
    /// issuer's key.
    CoinShare {
        /// The authenticated sender.
        from: ProcessId,
        /// The verified share.
        share: CoinShare,
    },
    /// A batch whose content digest was already computed off-thread (by
    /// the worker that sealed it or the reader that stored it), sparing
    /// the consensus thread the serialize-and-hash pass that
    /// [`EngineInput::BatchStored`] performs. `digest` must equal
    /// [`batch_digest`]`(&batch)`.
    Batch {
        /// The batch's content digest.
        digest: BatchDigest,
        /// The batch now available for resolution.
        batch: Batch,
    },
}

/// A typed effect returned by the engine. Drivers must route outputs in
/// the order returned — wire order is part of the replay contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOutput {
    /// Put `payload` on the wire to `to` (never this process itself).
    Send {
        /// The destination process.
        to: ProcessId,
        /// The encoded [`NodeMessage`] bytes.
        payload: Bytes,
    },
    /// Put `payload` on the wire to every process **except** this one
    /// (self-routing is internal to the engine).
    Broadcast {
        /// The encoded [`NodeMessage`] bytes.
        payload: Bytes,
    },
    /// Ask the driver to feed back [`EngineInput::Timer`] with `tag`
    /// after `delay` ticks.
    SetTimer {
        /// Ticks to wait.
        delay: u64,
        /// Tag to echo back.
        tag: u64,
    },
    /// `a_deliver`: the next vertex (block) of the total order, batch
    /// digests resolved to the transactions they named.
    Ordered(OrderedVertex),
    /// Ask the driver to request the listed batches from peer `from`:
    /// the total order reached a digest whose batch is not in the local
    /// store. Retried (rotating peers) via [`FETCH_TIMER_TAG`] timers, at
    /// most [`FETCH_RETRIES`] rounds per peer.
    FetchBatches {
        /// The peer to ask.
        from: ProcessId,
        /// The missing digests.
        digests: Vec<BatchDigest>,
    },
}

/// One entry of the engine's optional I/O log (see
/// [`DagRiderEngine::set_io_recording`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoRecord {
    /// An input handed to the engine, with the driver's clock reading.
    Input {
        /// The driver-supplied time of the call.
        at: Time,
        /// The input.
        input: EngineInput,
    },
    /// The engine was started ([`DagRiderEngine::start`]).
    Started {
        /// The driver-supplied time of the call.
        at: Time,
    },
    /// An output the engine returned.
    Output(EngineOutput),
}

/// One DAG-Rider process as a sans-I/O state machine: the public face of
/// this crate.
///
/// Generic over the reliable-broadcast instantiation `B` — plug in
/// [`BrachaRbc`](dagrider_rbc::BrachaRbc),
/// [`ProbabilisticRbc`](dagrider_rbc::ProbabilisticRbc), or
/// [`AvidRbc`](dagrider_rbc::AvidRbc) to realize the three Table 1 rows.
///
/// Call [`DagRiderEngine::start`] exactly once, then
/// [`DagRiderEngine::handle`] for every input, and route the returned
/// [`EngineOutput`]s. See the module docs for the full contract.
#[derive(Debug)]
pub struct DagRiderEngine<B> {
    committee: Committee,
    me: ProcessId,
    config: NodeConfig,
    rbc: B,
    core: DagCore,
    ordering: Ordering,
    coin: Coin,
    /// Shares awaiting a vertex to ride (piggyback mode only).
    pending_shares: Vec<CoinShare>,
    /// When each of our own vertices was handed to the broadcast layer
    /// (for a_bcast → a_deliver latency measurements).
    broadcast_at: std::collections::BTreeMap<Round, Time>,
    /// The local batch store's engine-side view: every batch whose bytes
    /// this process holds, by content digest.
    batches: std::collections::BTreeMap<BatchDigest, Batch>,
    /// Ordered deliveries whose payloads are not yet fully resolved — the
    /// head blocks the total order until its batches arrive.
    pending: VecDeque<PendingDelivery>,
    /// The resolved `a_deliver` log (what [`DagRiderEngine::ordered`]
    /// serves).
    resolved: Vec<OrderedVertex>,
    /// Fetch requests issued for missing batches (metric).
    fetches_sent: u64,
    /// Whether a [`FETCH_TIMER_TAG`] timer is outstanding.
    fetch_timer_armed: bool,
    decode_failures: usize,
    vertices_pruned: usize,
    tracer: SharedTracer,
    started: bool,
    io_log: Option<Vec<IoRecord>>,
    /// Durable events accumulated this turn (`None` = recording off; see
    /// [`DagRiderEngine::set_durable_recording`]).
    durable_log: Option<Vec<DurableEvent>>,
    /// How many entries of `ordering.commits()` have been recorded as
    /// [`DurableEvent::Commit`]s already.
    durable_commits_logged: usize,
    /// Vertices already recorded (or replayed), so a sync duplicate after
    /// recovery is not re-logged. Pruned with the DAG.
    logged_vertices: BTreeSet<VertexRef>,
    /// Coin shares already recorded (or replayed), by (instance, issuer).
    logged_shares: BTreeSet<(u64, ProcessId)>,
}

/// One ordered delivery waiting for its batches, with its fetch budget.
#[derive(Debug)]
struct PendingDelivery {
    delivery: Delivery,
    /// Fetch requests issued while this delivery headed the queue.
    attempts: usize,
}

impl<B: ReliableBroadcast> DagRiderEngine<B> {
    /// Creates an engine for `me` with its dealt coin keys.
    pub fn new(
        committee: Committee,
        me: ProcessId,
        coin_keys: CoinKeys,
        config: NodeConfig,
    ) -> Self {
        let mut core = DagCore::new(committee, me, config.auto_empty_blocks, config.max_round);
        core.set_disable_weak_edges(config.disable_weak_edges);
        core.set_sparse_edges(config.sparse_edges);
        let mut ordering = Ordering::new(core.dag());
        if let Some(sparse) = config.sparse_edges {
            ordering.set_commit_threshold(sparse.commit_threshold(&committee));
        }
        let mut rbc = B::new(committee, me, config.rbc_seed);
        let tracer = match config.trace_capacity {
            Some(capacity) => SharedTracer::new(me, capacity),
            None => SharedTracer::disabled(),
        };
        core.set_tracer(tracer.clone());
        ordering.set_tracer(tracer.clone());
        rbc.set_tracer(tracer.clone());
        Self {
            committee,
            me,
            rbc,
            core,
            ordering,
            coin: Coin::new(coin_keys),
            pending_shares: Vec::new(),
            broadcast_at: std::collections::BTreeMap::new(),
            batches: std::collections::BTreeMap::new(),
            pending: VecDeque::new(),
            resolved: Vec::new(),
            fetches_sent: 0,
            fetch_timer_armed: false,
            decode_failures: 0,
            vertices_pruned: 0,
            tracer,
            started: false,
            io_log: None,
            durable_log: None,
            durable_commits_logged: 0,
            logged_vertices: BTreeSet::new(),
            logged_shares: BTreeSet::new(),
            config,
        }
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The committee.
    pub fn committee(&self) -> Committee {
        self.committee
    }

    /// Whether [`DagRiderEngine::start`] has run.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Enqueues a block for atomic broadcast **without** driving the
    /// protocol — the compatibility path for harnesses that inject client
    /// payload outside a driver turn (the block rides the next vertex).
    /// Prefer feeding [`EngineInput::SubmitBlock`] through
    /// [`DagRiderEngine::handle`], which also unblocks a proposal stalled
    /// on an empty queue.
    pub fn enqueue_block(&mut self, block: Block) {
        self.core.enqueue_block(block);
    }

    /// Enqueues a digest-list payload for atomic broadcast **without**
    /// driving the protocol — the digest-mode counterpart of
    /// [`DagRiderEngine::enqueue_block`]. Consecutive pre-start calls
    /// coalesce into one payload; prefer
    /// [`EngineInput::SubmitDigests`] through [`DagRiderEngine::handle`]
    /// in live drivers.
    pub fn enqueue_digests(&mut self, digests: Vec<BatchDigest>) {
        self.core.enqueue_digests(digests);
    }

    /// Makes a batch resolvable **without** driving the protocol — the
    /// harness counterpart of [`EngineInput::BatchStored`], for drivers
    /// that pre-stage batches before a run.
    pub fn store_batch(&mut self, batch: Batch) {
        let digest = batch_digest(&batch);
        self.insert_batch(digest, batch);
    }

    /// The single batch-insert point: stores the batch, traces a fresh
    /// insert, and records it durably (first sighting only).
    fn insert_batch(&mut self, digest: BatchDigest, batch: Batch) {
        if let Some(log) = self.durable_log.as_mut() {
            if !self.batches.contains_key(&digest) {
                log.push(DurableEvent::Batch(batch.clone()));
            }
        }
        if self.batches.insert(digest, batch).is_none() {
            self.tracer.record(TraceEvent::BatchStored { digest });
        }
    }

    /// Records a delivered or synced vertex durably (first sighting only;
    /// genesis is never logged — every fresh engine already has it).
    fn record_durable_vertex(&mut self, vertex: &Vertex) {
        if self.durable_log.is_some()
            && vertex.round() != Round::GENESIS
            && self.logged_vertices.insert(vertex.reference())
        {
            if let Some(log) = self.durable_log.as_mut() {
                log.push(DurableEvent::Vertex(vertex.clone()));
            }
        }
    }

    /// Records an accepted coin share durably (first sighting only).
    fn record_durable_share(&mut self, share: &CoinShare) {
        if self.durable_log.is_some()
            && self.logged_shares.insert((share.instance(), share.issuer()))
        {
            if let Some(log) = self.durable_log.as_mut() {
                log.push(DurableEvent::CoinShare(*share));
            }
        }
    }

    /// The single coin-share acceptance point: inserts the share (via the
    /// verifying or pre-verified path), records it durably on acceptance,
    /// and delivers whatever a completed election unlocks.
    fn accept_share(
        &mut self,
        share: CoinShare,
        proof_checked: bool,
        out: &mut Vec<EngineOutput>,
        now: Time,
    ) {
        let wave = Wave::new(share.instance());
        let res = if proof_checked {
            self.coin.add_verified_share(share)
        } else {
            self.coin.add_share(share)
        };
        let Ok(outcome) = res else { return };
        self.record_durable_share(&share);
        if let Some(leader) = outcome {
            let delivered = self.ordering.on_leader(wave, leader, self.core.dag(), now);
            self.deliver(delivered, out, now);
        }
    }

    /// The `a_deliver` log: every vertex (block) in its final total-order
    /// position, batch digests resolved to their transactions.
    pub fn ordered(&self) -> &[OrderedVertex] {
        &self.resolved
    }

    /// Ordered deliveries still waiting for their batches (the head
    /// blocks the total order until it resolves).
    pub fn pending_deliveries(&self) -> usize {
        self.pending.len()
    }

    /// Batches held in the engine's local store view.
    pub fn batches_stored(&self) -> usize {
        self.batches.len()
    }

    /// Fetch requests issued for missing batches so far.
    pub fn fetches_sent(&self) -> u64 {
        self.fetches_sent
    }

    /// Per-wave commit outcomes (experiment bookkeeping).
    pub fn commits(&self) -> &[CommitEvent] {
        self.ordering.commits()
    }

    /// The local DAG view.
    pub fn dag(&self) -> &Dag {
        self.core.dag()
    }

    /// The construction layer's current round.
    pub fn current_round(&self) -> Round {
        self.core.round()
    }

    /// The highest wave whose leader this process committed.
    pub fn decided_wave(&self) -> Wave {
        self.ordering.decided_wave()
    }

    /// Messages that failed to decode (malicious/corrupt wire bytes).
    pub fn decode_failures(&self) -> usize {
        self.decode_failures
    }

    /// Vertices dropped by garbage collection so far.
    pub fn vertices_pruned(&self) -> usize {
        self.vertices_pruned
    }

    /// The engine's tracer handle (disabled unless
    /// [`NodeConfig::trace_capacity`] was set).
    pub fn tracer(&self) -> &SharedTracer {
        &self.tracer
    }

    /// The trace ring's contents, oldest first (empty when tracing is
    /// off).
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        self.tracer.records()
    }

    /// Broadcast-to-delivery latency of this process's **own** vertices,
    /// in ticks: for every own vertex in the ordered log, the gap between
    /// handing it to the broadcast layer and `a_deliver`-ing it locally.
    /// This is the client-visible commit latency the §6.2 time-complexity
    /// analysis bounds.
    pub fn own_vertex_latencies(&self) -> Vec<(Round, u64)> {
        self.resolved
            .iter()
            .filter(|o| o.vertex.source == self.me)
            .filter_map(|o| {
                self.broadcast_at
                    .get(&o.vertex.round)
                    .map(|&sent| (o.vertex.round, o.delivered_at.ticks() - sent.ticks()))
            })
            .collect()
    }

    /// Turns I/O recording on or off. While on, every input (with its
    /// clock reading) and every output is appended to the log returned by
    /// [`DagRiderEngine::io_log`] — the raw material of the determinism
    /// tests and of replay debugging.
    pub fn set_io_recording(&mut self, on: bool) {
        if on {
            self.io_log.get_or_insert_with(Vec::new);
        } else {
            self.io_log = None;
        }
    }

    /// The recorded I/O log (empty unless
    /// [`DagRiderEngine::set_io_recording`] enabled it).
    pub fn io_log(&self) -> &[IoRecord] {
        self.io_log.as_deref().unwrap_or(&[])
    }

    /// Turns durable-event recording on or off. While on, every newly
    /// accepted vertex, coin share, batch, and wave commit is appended
    /// (deduplicated) to an internal queue the driver drains with
    /// [`DagRiderEngine::drain_durable_events`] after each turn — the
    /// write-ahead-log feed of `dagrider-store`. Enable *after* replaying
    /// recovered state: replayed events count as already logged.
    pub fn set_durable_recording(&mut self, on: bool) {
        if on {
            if self.durable_log.is_none() {
                self.durable_log = Some(Vec::new());
                self.durable_commits_logged = self.ordering.commits().len();
            }
        } else {
            self.durable_log = None;
        }
    }

    /// Drains the durable events recorded since the last drain (empty
    /// unless [`DagRiderEngine::set_durable_recording`] enabled it). The
    /// driver must persist these *before* acting on the outputs of the
    /// turn that produced them.
    pub fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
        self.durable_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Every batch held in the engine's local store view — the batch
    /// section of a durable snapshot.
    pub fn stored_batches(&self) -> Vec<Batch> {
        self.batches.values().cloned().collect()
    }

    /// Every coin instance whose leader this process has opened, with the
    /// elected leader, ascending by instance — the leader section of a
    /// durable snapshot. The coin aggregators retain only combined group
    /// elements (proofs are dropped on acceptance), so a snapshot stores
    /// the *outcome* of each election; waves whose threshold was not yet
    /// reached at snapshot time are covered by the WAL's share records.
    pub fn coin_leaders(&self) -> Vec<(u64, ProcessId)> {
        self.coin.opened_leaders()
    }

    /// Replays one recovered durable event into the engine — the restart
    /// path. Events must be fed in log order, before
    /// [`DagRiderEngine::start`] and before recording is (re-)enabled;
    /// each replayed event is marked as already logged so the
    /// post-recovery sync stream does not re-record it. Identical event
    /// sequences rebuild byte-identical ordered logs (the determinism
    /// contract of the module docs); outputs are returned for uniformity
    /// but a recovering driver normally discards them — peers already
    /// processed the originals.
    pub fn replay_durable(
        &mut self,
        event: DurableEvent,
        now: Time,
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<EngineOutput> {
        self.tracer.set_now(now);
        let mut out = Vec::new();
        match event {
            DurableEvent::Vertex(vertex) => {
                self.logged_vertices.insert(vertex.reference());
                let source = vertex.source();
                let round = vertex.round();
                let events = self.core.on_vertex(vertex, source, round);
                let mut queue = VecDeque::new();
                self.handle_dag_events(events, &mut out, &mut queue, now, rng);
                self.drive(queue, &mut out, now, rng);
            }
            DurableEvent::CoinShare(share) => {
                self.logged_shares.insert((share.instance(), share.issuer()));
                self.on_verified_share(share, &mut out, now);
            }
            DurableEvent::Batch(batch) => {
                self.store_batch(batch);
                self.drain_pending(&mut out, now, false);
            }
            DurableEvent::Commit { wave, leader } => {
                let delivered = self.ordering.on_leader(wave, leader, self.core.dag(), now);
                self.deliver(delivered, &mut out, now);
            }
        }
        self.finish_turn(&mut out);
        out
    }

    /// All non-genesis vertices of the local DAG in ascending
    /// `(round, source)` order — the replay stream served to a restarted
    /// peer (each becomes an [`EngineInput::SyncVertex`] there).
    pub fn sync_vertices(&self) -> Vec<Vertex> {
        let mut out = Vec::new();
        let mut round = self.core.dag().lowest_retained_round().unwrap_or(Round::new(1));
        if round == Round::GENESIS {
            round = Round::new(1);
        }
        let high = self.core.dag().highest_round();
        while round <= high {
            out.extend(self.core.dag().round_vertices(round).values().cloned());
            round = round.next();
        }
        out
    }

    /// This process's own coin share for `instance` (a wave number), for
    /// replay to a restarted peer. Share values are deterministic per
    /// (key, instance); only the proof nonce draws from `rng`, and any
    /// valid share combines to the same leader.
    pub fn coin_share(&mut self, instance: u64, rng: &mut rand::rngs::StdRng) -> CoinShare {
        self.coin.my_share(instance, rng)
    }

    /// Starts the protocol (Algorithm 2: broadcast the round-1 vertex).
    /// Must be called exactly once, before any [`DagRiderEngine::handle`].
    pub fn start(&mut self, now: Time, rng: &mut rand::rngs::StdRng) -> Vec<EngineOutput> {
        debug_assert!(!self.started, "start() is called once");
        self.started = true;
        if let Some(log) = self.io_log.as_mut() {
            log.push(IoRecord::Started { at: now });
        }
        self.tracer.set_now(now);
        let mut out = Vec::new();
        let events = self.core.start();
        let mut queue = VecDeque::new();
        self.handle_dag_events(events, &mut out, &mut queue, now, rng);
        self.drive(queue, &mut out, now, rng);
        self.finish_turn(&mut out);
        self.record_outputs(&out);
        out
    }

    /// Feeds one input and returns the effects, in routing order.
    pub fn handle(
        &mut self,
        now: Time,
        input: EngineInput,
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<EngineOutput> {
        if let Some(log) = self.io_log.as_mut() {
            log.push(IoRecord::Input { at: now, input: input.clone() });
        }
        self.tracer.set_now(now);
        let mut out = Vec::new();
        match input {
            EngineInput::Message { from, payload } => {
                self.on_message(from, &payload, &mut out, now, rng);
            }
            EngineInput::Timer { tag } => {
                if tag == FETCH_TIMER_TAG {
                    // Fetch-retry turn: the head delivery may re-request
                    // its missing batches from the next peer in rotation.
                    self.fetch_timer_armed = false;
                    self.drain_pending(&mut out, now, true);
                }
                // Other timer turns are end-of-turn housekeeping only.
            }
            EngineInput::SubmitBlock(block) => {
                self.core.enqueue_block(block);
                // Unblock a proposal stalled on an empty queue
                // (Algorithm 2 line 17's `wait` resuming).
                let events = self.core.retry_propose();
                let mut queue = VecDeque::new();
                self.handle_dag_events(events, &mut out, &mut queue, now, rng);
                self.drive(queue, &mut out, now, rng);
            }
            EngineInput::SyncVertex(vertex) => {
                self.record_durable_vertex(&vertex);
                let source = vertex.source();
                let round = vertex.round();
                let events = self.core.on_vertex(vertex, source, round);
                let mut queue = VecDeque::new();
                self.handle_dag_events(events, &mut out, &mut queue, now, rng);
                self.drive(queue, &mut out, now, rng);
            }
            EngineInput::SubmitDigests(digests) => {
                self.core.enqueue_digests(digests);
                let events = self.core.retry_propose();
                let mut queue = VecDeque::new();
                self.handle_dag_events(events, &mut out, &mut queue, now, rng);
                self.drive(queue, &mut out, now, rng);
            }
            EngineInput::BatchStored(batch) => {
                let digest = batch_digest(&batch);
                self.insert_batch(digest, batch);
                self.drain_pending(&mut out, now, false);
            }
            EngineInput::PreVerified(verified) => match verified {
                VerifiedInput::Message { from, payload, digest } => {
                    self.on_verified_message(from, &payload, digest, &mut out, now, rng);
                }
                VerifiedInput::CoinShare { from, share } => {
                    if share.issuer() == from {
                        self.on_verified_share(share, &mut out, now);
                    } else {
                        self.decode_failures += 1;
                    }
                }
                VerifiedInput::Batch { digest, batch } => {
                    self.insert_batch(digest, batch);
                    self.drain_pending(&mut out, now, false);
                }
            },
        }
        self.finish_turn(&mut out);
        self.record_outputs(&out);
        out
    }

    fn record_outputs(&mut self, out: &[EngineOutput]) {
        if let Some(log) = self.io_log.as_mut() {
            log.extend(out.iter().cloned().map(IoRecord::Output));
        }
    }

    /// The Message-input body: decode the wire envelope, dispatch.
    fn on_message(
        &mut self,
        from: ProcessId,
        payload: &[u8],
        out: &mut Vec<EngineOutput>,
        now: Time,
        rng: &mut rand::rngs::StdRng,
    ) {
        match NodeMessage::<B::Message>::from_bytes(payload) {
            Ok(NodeMessage::Rbc(m)) => {
                let actions = self.rbc.on_message(from, m, rng);
                self.drive(actions.into(), out, now, rng);
            }
            Ok(NodeMessage::Coin(share)) => {
                // Shares from non-issuers or with bad proofs are rejected
                // inside the coin.
                if share.issuer() != from {
                    self.decode_failures += 1;
                    return;
                }
                self.accept_share(share, false, out, now);
            }
            Err(_) => self.decode_failures += 1,
        }
    }

    /// The PreVerified-Message body: like [`Self::on_message`], but the
    /// RBC payload digest was pre-computed off-thread, so the broadcast
    /// layer skips its own hashing. Coin shares arriving through this
    /// variant were *not* DLEQ-checked by the driver (the pool routes
    /// those as [`VerifiedInput::CoinShare`]), so they take the normal
    /// verifying path.
    fn on_verified_message(
        &mut self,
        from: ProcessId,
        payload: &[u8],
        digest: Option<Digest>,
        out: &mut Vec<EngineOutput>,
        now: Time,
        rng: &mut rand::rngs::StdRng,
    ) {
        match NodeMessage::<B::Message>::from_bytes(payload) {
            Ok(NodeMessage::Rbc(m)) => {
                let actions = self.rbc.on_message_with_digest(from, m, digest, rng);
                self.drive(actions.into(), out, now, rng);
            }
            Ok(NodeMessage::Coin(share)) => {
                if share.issuer() != from {
                    self.decode_failures += 1;
                    return;
                }
                self.accept_share(share, false, out, now);
            }
            Err(_) => self.decode_failures += 1,
        }
    }

    /// The PreVerified-CoinShare body: insert a share whose proof the
    /// driver already verified.
    fn on_verified_share(&mut self, share: CoinShare, out: &mut Vec<EngineOutput>, now: Time) {
        self.accept_share(share, true, out, now);
    }

    /// Queues ordering-layer deliveries for payload resolution and emits
    /// every delivery now resolvable, preserving the total order.
    fn deliver(&mut self, deliveries: Vec<Delivery>, out: &mut Vec<EngineOutput>, now: Time) {
        for delivery in deliveries {
            if self.tracer.is_enabled() {
                for &digest in delivery.payload.digests() {
                    self.tracer.record(TraceEvent::DigestOrdered { digest });
                }
            }
            self.pending.push_back(PendingDelivery { delivery, attempts: 0 });
        }
        self.drain_pending(out, now, false);
    }

    /// Resolves pending deliveries head-first: a head whose batches are
    /// all local becomes an [`EngineOutput::Ordered`]; a blocked head
    /// halts the drain (later deliveries must not overtake it) and
    /// triggers the bounded fetch path. `retry` marks a fetch-timer turn,
    /// which may re-request from the next peer in rotation; a head that
    /// exhausts its budget waits silently for a pushed batch.
    fn drain_pending(&mut self, out: &mut Vec<EngineOutput>, now: Time, mut retry: bool) {
        while let Some(head) = self.pending.front() {
            let missing: Vec<BatchDigest> = head
                .delivery
                .payload
                .digests()
                .iter()
                .filter(|d| !self.batches.contains_key(d))
                .copied()
                .collect();
            if missing.is_empty() {
                let head = self.pending.pop_front().expect("front() was Some");
                let resolved = self.resolve(head.delivery, now);
                self.resolved.push(resolved.clone());
                out.push(EngineOutput::Ordered(resolved));
                // Progress was made: a fired retry timer is spent.
                retry = false;
                continue;
            }
            let first_block = head.attempts == 0;
            let peers = self.committee.n() - 1;
            let budget = FETCH_RETRIES * peers.max(1);
            if (first_block || retry) && head.attempts < budget {
                let source = head.delivery.vertex.source;
                let attempt = head.attempts;
                let from = self.fetch_target(source, attempt);
                let head = self.pending.front_mut().expect("front() was Some");
                head.attempts += 1;
                self.fetches_sent += 1;
                if self.tracer.is_enabled() {
                    for &digest in &missing {
                        self.tracer.record(TraceEvent::BatchFetchRequested { digest, from });
                    }
                }
                out.push(EngineOutput::FetchBatches { from, digests: missing });
                if !self.fetch_timer_armed {
                    self.fetch_timer_armed = true;
                    out.push(EngineOutput::SetTimer {
                        delay: FETCH_RETRY_DELAY,
                        tag: FETCH_TIMER_TAG,
                    });
                }
            }
            break;
        }
    }

    /// The peer to ask on fetch round `attempt`: the vertex's proposer
    /// first (its workers assembled or at least named the batches), then
    /// the remaining peers in id order, wrapping.
    fn fetch_target(&self, source: ProcessId, attempt: usize) -> ProcessId {
        let mut peers = Vec::with_capacity(self.committee.n() - 1);
        if source != self.me {
            peers.push(source);
        }
        for p in self.committee.others(self.me) {
            if p != source {
                peers.push(p);
            }
        }
        peers[attempt % peers.len()]
    }

    /// Materializes a delivery whose batches are all local: inline blocks
    /// pass through; digest payloads concatenate their batches'
    /// transactions in digest-list order into one block.
    fn resolve(&mut self, delivery: Delivery, now: Time) -> OrderedVertex {
        let block = match delivery.payload {
            Payload::Block(block) => block,
            Payload::Digests { proposer, seq, digests } => {
                let waited = now.ticks().saturating_sub(delivery.ordered_at.ticks());
                let mut transactions = Vec::new();
                for digest in &digests {
                    let batch = self.batches.get(digest).expect("drain checked availability");
                    transactions.extend_from_slice(batch.transactions());
                    self.tracer.record(TraceEvent::BatchResolved { digest: *digest, waited });
                }
                Block::new(proposer, seq, transactions)
            }
        };
        OrderedVertex {
            vertex: delivery.vertex,
            block,
            committed_in_wave: delivery.committed_in_wave,
            delivered_at: now,
        }
    }

    /// Routes a batch of RBC actions plus all their knock-on effects.
    fn drive(
        &mut self,
        mut queue: VecDeque<RbcAction<B::Message>>,
        out: &mut Vec<EngineOutput>,
        now: Time,
        rng: &mut rand::rngs::StdRng,
    ) {
        while let Some(action) = queue.pop_front() {
            match action {
                RbcAction::Send(to, m) => {
                    out.push(EngineOutput::Send {
                        to,
                        payload: Bytes::from(NodeMessage::Rbc(m).to_bytes()),
                    });
                }
                RbcAction::Deliver(delivery) => {
                    self.tracer.record(TraceEvent::VertexRbcDelivered {
                        vertex: VertexRef::new(delivery.round, delivery.source),
                    });
                    let Ok(payload) = VertexPayload::from_bytes(&delivery.payload) else {
                        self.decode_failures += 1;
                        continue;
                    };
                    // Piggybacked shares are only valid from their issuer
                    // (the broadcast authenticates the vertex's creator).
                    for share in payload.coin_shares {
                        if share.issuer() != delivery.source {
                            self.decode_failures += 1;
                            continue;
                        }
                        self.accept_share(share, false, out, now);
                    }
                    self.record_durable_vertex(&payload.vertex);
                    let events =
                        self.core.on_vertex(payload.vertex, delivery.source, delivery.round);
                    self.handle_dag_events(events, out, &mut queue, now, rng);
                }
            }
        }
    }

    fn handle_dag_events(
        &mut self,
        events: Vec<DagEvent>,
        out: &mut Vec<EngineOutput>,
        queue: &mut VecDeque<RbcAction<B::Message>>,
        now: Time,
        rng: &mut rand::rngs::StdRng,
    ) {
        for event in events {
            match event {
                DagEvent::Broadcast(vertex) => {
                    let round = vertex.round();
                    self.broadcast_at.insert(round, now);
                    let coin_shares = if self.config.piggyback_coin {
                        std::mem::take(&mut self.pending_shares)
                    } else {
                        Vec::new()
                    };
                    let payload = VertexPayload { vertex, coin_shares }.to_bytes();
                    queue.extend(self.rbc.rbcast(payload, round, rng));
                }
                DagEvent::WaveReady(wave) => {
                    // Flip the coin only now that the wave is complete
                    // (line 35 — unpredictability requires revealing the
                    // share no earlier).
                    let share = self.coin.my_share(wave.number(), rng);
                    self.record_durable_share(&share);
                    if self.config.piggyback_coin {
                        // Ride the next vertex (the round 4w+1 broadcast,
                        // which immediately follows this event).
                        self.pending_shares.push(share);
                    } else {
                        let msg: NodeMessage<B::Message> = NodeMessage::Coin(share);
                        out.push(EngineOutput::Broadcast { payload: Bytes::from(msg.to_bytes()) });
                    }
                    let delivered = self.ordering.on_wave_complete(wave, self.core.dag(), now);
                    self.deliver(delivered, out, now);
                    if let Some(leader) = self.coin.leader(wave.number()) {
                        let delivered = self.ordering.on_leader(wave, leader, self.core.dag(), now);
                        self.deliver(delivered, out, now);
                    }
                }
            }
        }
    }

    /// End-of-turn housekeeping: flush shares that found no vertex to
    /// ride (finite runs stop broadcasting at `max_round`), then garbage
    /// collect.
    fn finish_turn(&mut self, out: &mut Vec<EngineOutput>) {
        for share in std::mem::take(&mut self.pending_shares) {
            let msg: NodeMessage<B::Message> = NodeMessage::Coin(share);
            out.push(EngineOutput::Broadcast { payload: Bytes::from(msg.to_bytes()) });
        }
        // Record wave commits decided this turn, after the vertex and
        // share events that caused them (log order is causal order).
        if let Some(log) = self.durable_log.as_mut() {
            let commits = self.ordering.commits();
            for commit in commits.get(self.durable_commits_logged..).unwrap_or(&[]) {
                log.push(DurableEvent::Commit { wave: commit.wave, leader: commit.leader });
            }
            self.durable_commits_logged = commits.len();
        }
        self.maybe_gc();
    }

    /// Prunes every round strictly below the fully-delivered prefix minus
    /// the configured safety margin.
    fn maybe_gc(&mut self) {
        let Some(depth) = self.config.gc_depth else { return };
        // The lowest round still holding an undelivered vertex bounds what
        // is safe to drop.
        let mut frontier =
            self.core.dag().lowest_retained_round().unwrap_or(dagrider_types::Round::new(1));
        let high = self.core.dag().highest_round();
        while frontier <= high
            && !self.core.dag().round_vertices(frontier).is_empty()
            && self
                .core
                .dag()
                .round_vertices(frontier)
                .values()
                .map(dagrider_types::Vertex::reference)
                .all(|r| self.ordering.is_delivered(r))
        {
            frontier = frontier.next();
        }
        let keep_from = dagrider_types::Round::new(frontier.number().saturating_sub(depth));
        if keep_from > self.core.dag().pruned_floor() {
            // Advancing the floor also rebases the reachability engine's
            // slot space and rebuilds retained closures (see Dag::prune_below),
            // so prune only when the floor actually moves.
            self.vertices_pruned += self.core.prune_below(keep_from);
            self.ordering.prune_delivered_below(keep_from);
            self.rbc.prune(keep_from);
            // Coin aggregators for waves entirely below the floor.
            let keep_wave = keep_from.wave().number().saturating_sub(1);
            self.coin.prune(keep_wave);
            // The durable dedupe sets follow the same floors.
            self.logged_vertices.retain(|r| r.round >= keep_from);
            self.logged_shares.retain(|&(instance, _)| instance >= keep_wave);
        }
    }
}

#[cfg(test)]
mod tests {
    use dagrider_crypto::deal_coin_keys;
    use dagrider_rbc::BrachaRbc;
    use dagrider_types::{SeqNum, Transaction};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn node_message_codec_roundtrip() {
        let committee = Committee::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let keys = deal_coin_keys(&committee, &mut rng);
        let share = {
            let mut coin = Coin::new(keys[0].clone());
            coin.my_share(3, &mut rng)
        };
        let msg: NodeMessage<dagrider_rbc::BrachaMessage> = NodeMessage::Coin(share);
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(NodeMessage::<dagrider_rbc::BrachaMessage>::from_bytes(&bytes).unwrap(), msg);

        let rbc_msg = dagrider_rbc::BrachaMessage {
            source: ProcessId::new(0),
            round: Round::new(1),
            kind: dagrider_rbc::BrachaKind::Init(vec![1, 2, 3]),
        };
        let msg = NodeMessage::Rbc(rbc_msg);
        let bytes = msg.to_bytes();
        assert_eq!(NodeMessage::<dagrider_rbc::BrachaMessage>::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn vertex_payload_codec_roundtrip() {
        let committee = Committee::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(59);
        let keys = deal_coin_keys(&committee, &mut rng);
        let share = Coin::new(keys[0].clone()).my_share(2, &mut rng);
        let payload =
            VertexPayload { vertex: Vertex::genesis(ProcessId::new(1)), coin_shares: vec![share] };
        let bytes = payload.to_bytes();
        assert_eq!(bytes.len(), payload.encoded_len());
        assert_eq!(VertexPayload::from_bytes(&bytes).unwrap(), payload);
        // Empty share list costs exactly one extra byte over the vertex.
        let bare =
            VertexPayload { vertex: Vertex::genesis(ProcessId::new(1)), coin_shares: Vec::new() };
        assert_eq!(bare.encoded_len(), bare.vertex.encoded_len() + 1);
    }

    /// A minimal in-test driver: four engines exchanging outputs through a
    /// FIFO queue, no simulator anywhere. Proves the engine is complete
    /// without `dagrider-simnet` (which this crate no longer depends on).
    #[test]
    fn four_engines_reach_agreement_without_any_driver_crate() {
        let committee = Committee::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let keys = deal_coin_keys(&committee, &mut rng);
        let config = NodeConfig::default().with_max_round(16);
        let mut engines: Vec<DagRiderEngine<BrachaRbc>> = committee
            .members()
            .zip(keys)
            .map(|(p, k)| DagRiderEngine::new(committee, p, k, config.clone()))
            .collect();
        let mut rngs: Vec<StdRng> = (0..4).map(|i| StdRng::seed_from_u64(100 + i)).collect();
        let tx = Transaction::synthetic(7, 16);
        engines[2].enqueue_block(Block::new(ProcessId::new(2), SeqNum::new(1), vec![tx.clone()]));

        // (from, to, payload) FIFO network with instant delivery.
        let mut wire: VecDeque<(ProcessId, ProcessId, Vec<u8>)> = VecDeque::new();
        let mut clock = 0u64;
        let route = |from: ProcessId,
                     outs: Vec<EngineOutput>,
                     wire: &mut VecDeque<(ProcessId, ProcessId, Vec<u8>)>| {
            for out in outs {
                match out {
                    EngineOutput::Send { to, payload } => {
                        wire.push_back((from, to, payload.to_vec()));
                    }
                    EngineOutput::Broadcast { payload } => {
                        for to in committee.others(from) {
                            wire.push_back((from, to, payload.to_vec()));
                        }
                    }
                    EngineOutput::SetTimer { .. }
                    | EngineOutput::Ordered(_)
                    | EngineOutput::FetchBatches { .. } => {}
                }
            }
        };
        for p in committee.members() {
            let outs = engines[p.as_usize()].start(Time::new(clock), &mut rngs[p.as_usize()]);
            route(p, outs, &mut wire);
        }
        while let Some((from, to, payload)) = wire.pop_front() {
            clock += 1;
            let input = EngineInput::Message { from, payload };
            let outs =
                engines[to.as_usize()].handle(Time::new(clock), input, &mut rngs[to.as_usize()]);
            route(to, outs, &mut wire);
        }

        // Agreement: every pair of logs is prefix-comparable, and the
        // client block was ordered everywhere.
        let logs: Vec<Vec<VertexRef>> =
            engines.iter().map(|e| e.ordered().iter().map(|o| o.vertex).collect()).collect();
        for (i, a) in logs.iter().enumerate() {
            for b in logs.iter().skip(i + 1) {
                let common = a.len().min(b.len());
                assert_eq!(&a[..common], &b[..common], "logs diverge");
            }
        }
        for e in &engines {
            assert!(e.decided_wave() >= Wave::new(1), "{} decided nothing", e.me());
            assert!(
                e.ordered().iter().any(|o| o.block.transactions().contains(&tx)),
                "{} did not order the client block",
                e.me()
            );
        }
    }

    #[test]
    fn ordered_outputs_match_the_log() {
        // Every Ordered output must appear in the queryable log, in order.
        let committee = Committee::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let keys = deal_coin_keys(&committee, &mut rng);
        let config = NodeConfig::default().with_max_round(12);
        let mut engines: Vec<DagRiderEngine<BrachaRbc>> = committee
            .members()
            .zip(keys)
            .map(|(p, k)| DagRiderEngine::new(committee, p, k, config.clone()))
            .collect();
        let mut rngs: Vec<StdRng> = (0..4).map(StdRng::seed_from_u64).collect();
        let mut ordered_outputs: Vec<Vec<OrderedVertex>> = vec![Vec::new(); 4];
        let mut wire: VecDeque<(ProcessId, ProcessId, Vec<u8>)> = VecDeque::new();
        let collect = |from: ProcessId,
                       outs: Vec<EngineOutput>,
                       wire: &mut VecDeque<(ProcessId, ProcessId, Vec<u8>)>,
                       ordered: &mut Vec<Vec<OrderedVertex>>| {
            for out in outs {
                match out {
                    EngineOutput::Send { to, payload } => {
                        wire.push_back((from, to, payload.to_vec()));
                    }
                    EngineOutput::Broadcast { payload } => {
                        for to in committee.others(from) {
                            wire.push_back((from, to, payload.to_vec()));
                        }
                    }
                    EngineOutput::Ordered(o) => ordered[from.as_usize()].push(o),
                    EngineOutput::SetTimer { .. } | EngineOutput::FetchBatches { .. } => {}
                }
            }
        };
        for p in committee.members() {
            let outs = engines[p.as_usize()].start(Time::ZERO, &mut rngs[p.as_usize()]);
            collect(p, outs, &mut wire, &mut ordered_outputs);
        }
        let mut t = 0u64;
        while let Some((from, to, payload)) = wire.pop_front() {
            t += 1;
            let outs = engines[to.as_usize()].handle(
                Time::new(t),
                EngineInput::Message { from, payload },
                &mut rngs[to.as_usize()],
            );
            collect(to, outs, &mut wire, &mut ordered_outputs);
        }
        for p in committee.members() {
            assert!(!ordered_outputs[p.as_usize()].is_empty());
            assert_eq!(ordered_outputs[p.as_usize()].as_slice(), engines[p.as_usize()].ordered());
        }
    }

    #[test]
    fn sync_vertices_rebuild_an_identical_ordered_log() {
        // Run four engines to quiescence, then rebuild a fifth process's
        // state purely from one engine's sync stream plus coin shares —
        // the restarted-process catch-up path of the TCP runtime.
        let committee = Committee::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let keys = deal_coin_keys(&committee, &mut rng);
        let config = NodeConfig::default().with_max_round(12);
        let mut engines: Vec<DagRiderEngine<BrachaRbc>> = committee
            .members()
            .zip(keys.clone())
            .map(|(p, k)| DagRiderEngine::new(committee, p, k, config.clone()))
            .collect();
        let mut rngs: Vec<StdRng> = (0..4).map(|i| StdRng::seed_from_u64(50 + i)).collect();
        let mut wire: VecDeque<(ProcessId, ProcessId, Vec<u8>)> = VecDeque::new();
        let route = |from: ProcessId,
                     outs: Vec<EngineOutput>,
                     wire: &mut VecDeque<(ProcessId, ProcessId, Vec<u8>)>| {
            for out in outs {
                match out {
                    EngineOutput::Send { to, payload } => {
                        wire.push_back((from, to, payload.to_vec()));
                    }
                    EngineOutput::Broadcast { payload } => {
                        for to in committee.others(from) {
                            wire.push_back((from, to, payload.to_vec()));
                        }
                    }
                    _ => {}
                }
            }
        };
        for p in committee.members() {
            let outs = engines[p.as_usize()].start(Time::ZERO, &mut rngs[p.as_usize()]);
            route(p, outs, &mut wire);
        }
        while let Some((from, to, payload)) = wire.pop_front() {
            let outs = engines[to.as_usize()].handle(
                Time::ZERO,
                EngineInput::Message { from, payload },
                &mut rngs[to.as_usize()],
            );
            route(to, outs, &mut wire);
        }
        let reference = engines[0].ordered().to_vec();
        assert!(!reference.is_empty());
        let top_wave = engines[0].decided_wave().number();

        // A "restarted" p3: fresh engine, fed p0's sync stream and two
        // peers' coin shares (threshold f + 1 = 2). It must not start —
        // syncing precedes proposing.
        let mut fresh: DagRiderEngine<BrachaRbc> =
            DagRiderEngine::new(committee, ProcessId::new(3), keys[3].clone(), config);
        let mut fresh_rng = StdRng::seed_from_u64(999);
        let vertices = engines[0].sync_vertices();
        assert!(!vertices.is_empty());
        let mut sink = Vec::new();
        for v in vertices {
            sink.extend(fresh.handle(Time::ZERO, EngineInput::SyncVertex(v), &mut fresh_rng));
        }
        for w in 1..=top_wave {
            for issuer in [0usize, 1] {
                let share = engines[issuer].coin_share(w, &mut rngs[issuer]);
                let msg: NodeMessage<dagrider_rbc::BrachaMessage> = NodeMessage::Coin(share);
                sink.extend(fresh.handle(
                    Time::ZERO,
                    EngineInput::Message {
                        from: ProcessId::new(issuer as u32),
                        payload: msg.to_bytes(),
                    },
                    &mut fresh_rng,
                ));
            }
        }
        let rebuilt: Vec<VertexRef> = fresh.ordered().iter().map(|o| o.vertex).collect();
        let reference_refs: Vec<VertexRef> = reference.iter().map(|o| o.vertex).collect();
        let common = rebuilt.len().min(reference_refs.len());
        assert!(common > 0, "sync rebuilt nothing");
        assert_eq!(&rebuilt[..common], &reference_refs[..common]);
    }
}
