//! **DAG-Rider** — the asynchronous Byzantine Atomic Broadcast protocol of
//! Keidar, Kokoris-Kogias, Naor & Spiegelman, *All You Need is DAG*
//! (PODC 2021).
//!
//! The protocol is two independent layers:
//!
//! 1. **DAG construction** ([`DagCore`], paper §4 / Algorithm 2): each
//!    process reliably broadcasts one vertex per round carrying a block of
//!    transactions, ≥ `2f+1` *strong edges* to the previous round, and
//!    *weak edges* to any older vertex it cannot otherwise reach. Vertices
//!    park in a buffer until their causal history is complete, so the local
//!    DAG ([`Dag`]) is always causally closed.
//! 2. **Zero-overhead ordering** ([`Ordering`], paper §5 / Algorithm 3):
//!    rounds are grouped into waves of 4. When a wave completes, a global
//!    perfect coin retroactively elects its leader vertex; the leader
//!    *commits* if ≥ `2f+1` vertices of the wave's last round have strong
//!    paths to it. Committed leaders chain backwards through strong paths,
//!    and each leader's causal history is atomically delivered in a
//!    deterministic order. **No communication beyond the DAG itself** is
//!    needed (the coin shares piggyback as tiny messages).
//!
//! [`DagRiderEngine`] assembles both layers over any
//! [`ReliableBroadcast`](dagrider_rbc::ReliableBroadcast) instantiation as a
//! **sans-I/O state machine**: drivers feed it typed [`EngineInput`]s and
//! route the typed [`EngineOutput`]s it returns. This crate performs no
//! I/O and depends on no runtime — the deterministic simulator drives it
//! through the `dagrider-simactor` adapter, and the real TCP cluster
//! drives it from `dagrider-net`.
//!
//! # Quickstart
//!
//! ```
//! use dagrider_core::{DagRiderEngine, EngineOutput, NodeConfig};
//! use dagrider_crypto::deal_coin_keys;
//! use dagrider_rbc::BrachaRbc;
//! use dagrider_types::{Committee, ProcessId, Time};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let committee = Committee::new(4)?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut keys = deal_coin_keys(&committee, &mut rng);
//! let config = NodeConfig::default().with_max_round(20);
//!
//! let mut engine: DagRiderEngine<BrachaRbc> =
//!     DagRiderEngine::new(committee, ProcessId::new(0), keys.remove(0), config);
//!
//! // Starting the engine proposes the round-1 vertex: the outputs are the
//! // reliable-broadcast sends the driver must put on the wire.
//! let outputs = engine.start(Time::ZERO, &mut rng);
//! assert!(outputs.iter().any(|o| matches!(o, EngineOutput::Send { .. })));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod construction;
mod dag;
mod durable;
mod engine;
mod ordering;
mod reach;
pub mod render;

pub use construction::{DagCore, DagEvent};
pub use dag::Dag;
pub use durable::DurableEvent;
pub use engine::{
    batch_digest, DagRiderEngine, EngineInput, EngineOutput, IoRecord, NodeConfig, NodeMessage,
    VerifiedInput, VertexPayload, FETCH_RETRIES, FETCH_RETRY_DELAY, FETCH_TIMER_TAG,
};
pub use ordering::{CommitEvent, Delivery, OrderedVertex, Ordering, WaveOutcome};
