//! **DAG-Rider** — the asynchronous Byzantine Atomic Broadcast protocol of
//! Keidar, Kokoris-Kogias, Naor & Spiegelman, *All You Need is DAG*
//! (PODC 2021).
//!
//! The protocol is two independent layers:
//!
//! 1. **DAG construction** ([`DagCore`], paper §4 / Algorithm 2): each
//!    process reliably broadcasts one vertex per round carrying a block of
//!    transactions, ≥ `2f+1` *strong edges* to the previous round, and
//!    *weak edges* to any older vertex it cannot otherwise reach. Vertices
//!    park in a buffer until their causal history is complete, so the local
//!    DAG ([`Dag`]) is always causally closed.
//! 2. **Zero-overhead ordering** ([`Ordering`], paper §5 / Algorithm 3):
//!    rounds are grouped into waves of 4. When a wave completes, a global
//!    perfect coin retroactively elects its leader vertex; the leader
//!    *commits* if ≥ `2f+1` vertices of the wave's last round have strong
//!    paths to it. Committed leaders chain backwards through strong paths,
//!    and each leader's causal history is atomically delivered in a
//!    deterministic order. **No communication beyond the DAG itself** is
//!    needed (the coin shares piggyback as tiny messages).
//!
//! [`DagRiderNode`] assembles both layers over any
//! [`ReliableBroadcast`](dagrider_rbc::ReliableBroadcast) instantiation and
//! runs as a [`dagrider_simnet::Actor`].
//!
//! # Quickstart
//!
//! ```
//! use dagrider_core::{DagRiderNode, NodeConfig};
//! use dagrider_crypto::deal_coin_keys;
//! use dagrider_rbc::BrachaRbc;
//! use dagrider_simnet::{Simulation, UniformScheduler};
//! use dagrider_types::Committee;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let committee = Committee::new(4)?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let keys = deal_coin_keys(&committee, &mut rng);
//! let config = NodeConfig::default().with_max_round(20);
//!
//! let nodes: Vec<DagRiderNode<BrachaRbc>> = committee
//!     .members()
//!     .zip(keys)
//!     .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
//!     .collect();
//! let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 10), 7);
//! sim.run();
//!
//! // Every process ordered the same sequence of blocks.
//! let reference = sim.actor(dagrider_types::ProcessId::new(0)).ordered().to_vec();
//! assert!(!reference.is_empty());
//! for p in committee.members() {
//!     let log = sim.actor(p).ordered();
//!     assert!(log.iter().zip(&reference).all(|(a, b)| a.vertex == b.vertex));
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common_core;
mod construction;
mod dag;
mod node;
mod ordering;
mod reach;
pub mod render;

pub use construction::{DagCore, DagEvent};
pub use dag::Dag;
pub use node::{DagRiderNode, NodeConfig, NodeMessage, VertexPayload};
pub use ordering::{CommitEvent, OrderedVertex, Ordering, WaveOutcome};
