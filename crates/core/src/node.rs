//! The full DAG-Rider process: construction + ordering + coin over a
//! pluggable reliable broadcast, packaged as a simulator actor.

use std::collections::VecDeque;

use bytes::Bytes;
use dagrider_crypto::{Coin, CoinKeys, CoinShare};
use dagrider_rbc::{RbcAction, ReliableBroadcast};
use dagrider_simnet::{Actor, Context, Time};
use dagrider_trace::{SharedTracer, TraceEvent, TraceRecord};
use dagrider_types::{
    Block, Committee, Decode, DecodeError, Encode, ProcessId, Round, Vertex, VertexRef, Wave,
};

use crate::construction::{DagCore, DagEvent};
use crate::dag::Dag;
use crate::ordering::{CommitEvent, OrderedVertex, Ordering};

/// Wire envelope multiplexing the broadcast layer's traffic with the tiny
/// coin-share messages (§5 footnote 1: the coin can piggyback on the DAG;
/// we send shares as their own messages, which costs `O(n)` extra words
/// per wave — asymptotically free next to the broadcasts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeMessage<M> {
    /// A reliable-broadcast protocol message.
    Rbc(M),
    /// A threshold-coin share for some wave.
    Coin(CoinShare),
}

impl<M: Encode> Encode for NodeMessage<M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            NodeMessage::Rbc(m) => {
                0u8.encode(buf);
                m.encode(buf);
            }
            NodeMessage::Coin(s) => {
                1u8.encode(buf);
                s.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            NodeMessage::Rbc(m) => m.encoded_len(),
            NodeMessage::Coin(s) => s.encoded_len(),
        }
    }
}

impl<M: Decode> Decode for NodeMessage<M> {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(NodeMessage::Rbc(M::decode(buf)?)),
            1 => Ok(NodeMessage::Coin(CoinShare::decode(buf)?)),
            _ => Err(DecodeError::Invalid("unknown node message tag")),
        }
    }
}

/// Configuration for a [`DagRiderNode`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Propose empty blocks when the client queue runs dry (default true;
    /// the paper assumes an infinite block supply).
    pub auto_empty_blocks: bool,
    /// Stop creating vertices after this round so finite simulations
    /// quiesce (default: none — run forever).
    pub max_round: Option<Round>,
    /// Seed for the broadcast layer's local randomness.
    pub rbc_seed: u64,
    /// **Ablation only**: build vertices without weak edges, knowingly
    /// breaking Validity (measured in `bench/bin/ablation_weak_edges`).
    pub disable_weak_edges: bool,
    /// Piggyback coin shares on the next vertex broadcast instead of
    /// sending dedicated share messages (§5 footnote 1: "the coin can be
    /// easily implemented as part of the DAG itself"). Must be uniform
    /// across the committee. Shares still go out as dedicated messages
    /// when no further vertex will carry them (end of a finite run).
    pub piggyback_coin: bool,
    /// Garbage-collect DAG rounds this far below the fully-delivered
    /// prefix (`None` = keep everything; real deployments prune).
    pub gc_depth: Option<u64>,
    /// Ring capacity for the structured event tracer (`None` = tracing
    /// off, the default: the hot path then pays a single branch).
    pub trace_capacity: Option<usize>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            auto_empty_blocks: true,
            max_round: None,
            rbc_seed: 0,
            disable_weak_edges: false,
            piggyback_coin: false,
            gc_depth: None,
            trace_capacity: None,
        }
    }
}

impl NodeConfig {
    /// Caps vertex creation at `round`.
    pub fn with_max_round(mut self, round: u64) -> Self {
        self.max_round = Some(Round::new(round));
        self
    }

    /// Sets whether empty blocks are auto-proposed when starved.
    pub fn with_auto_empty_blocks(mut self, auto: bool) -> Self {
        self.auto_empty_blocks = auto;
        self
    }

    /// Piggybacks coin shares on vertex broadcasts (§5 footnote 1).
    pub fn with_piggyback_coin(mut self) -> Self {
        self.piggyback_coin = true;
        self
    }

    /// Enables garbage collection `depth` rounds behind the delivered
    /// prefix.
    pub fn with_gc_depth(mut self, depth: u64) -> Self {
        self.gc_depth = Some(depth);
        self
    }

    /// Enables structured event tracing with a ring buffer of `capacity`
    /// records per node.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }
}

/// The reliable-broadcast payload: a vertex plus any piggybacked coin
/// shares (§5 footnote 1). With piggybacking off the share list is empty
/// and costs one byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexPayload {
    /// The DAG vertex.
    pub vertex: Vertex,
    /// Coin shares revealed by the vertex's creator (normally 0 or 1; the
    /// share for wave `w` rides the round `4w + 1` vertex).
    pub coin_shares: Vec<CoinShare>,
}

impl Encode for VertexPayload {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.vertex.encode(buf);
        self.coin_shares.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.vertex.encoded_len() + self.coin_shares.encoded_len()
    }
}

impl Decode for VertexPayload {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            vertex: dagrider_types::Vertex::decode(buf)?,
            coin_shares: Vec::<CoinShare>::decode(buf)?,
        })
    }
}

/// One DAG-Rider process: the public face of this crate.
///
/// Generic over the reliable-broadcast instantiation `B` — plug in
/// [`BrachaRbc`](dagrider_rbc::BrachaRbc),
/// [`ProbabilisticRbc`](dagrider_rbc::ProbabilisticRbc), or
/// [`AvidRbc`](dagrider_rbc::AvidRbc) to realize the three Table 1 rows.
#[derive(Debug)]
pub struct DagRiderNode<B> {
    committee: Committee,
    me: ProcessId,
    config: NodeConfig,
    rbc: B,
    core: DagCore,
    ordering: Ordering,
    coin: Coin,
    /// Shares awaiting a vertex to ride (piggyback mode only).
    pending_shares: Vec<CoinShare>,
    /// When each of our own vertices was handed to the broadcast layer
    /// (for a_bcast → a_deliver latency measurements).
    broadcast_at: std::collections::BTreeMap<Round, Time>,
    decode_failures: usize,
    vertices_pruned: usize,
    tracer: SharedTracer,
}

impl<B: ReliableBroadcast> DagRiderNode<B> {
    /// Creates a node for `me` with its dealt coin keys.
    pub fn new(
        committee: Committee,
        me: ProcessId,
        coin_keys: CoinKeys,
        config: NodeConfig,
    ) -> Self {
        let mut core = DagCore::new(committee, me, config.auto_empty_blocks, config.max_round);
        core.set_disable_weak_edges(config.disable_weak_edges);
        let mut ordering = Ordering::new(core.dag());
        let mut rbc = B::new(committee, me, config.rbc_seed);
        let tracer = match config.trace_capacity {
            Some(capacity) => SharedTracer::new(me, capacity),
            None => SharedTracer::disabled(),
        };
        core.set_tracer(tracer.clone());
        ordering.set_tracer(tracer.clone());
        rbc.set_tracer(tracer.clone());
        Self {
            committee,
            me,
            rbc,
            core,
            ordering,
            coin: Coin::new(coin_keys),
            pending_shares: Vec::new(),
            broadcast_at: std::collections::BTreeMap::new(),
            decode_failures: 0,
            vertices_pruned: 0,
            tracer,
            config,
        }
    }

    /// This node's process id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The committee.
    pub fn committee(&self) -> Committee {
        self.committee
    }

    /// `a_bcast(b, r)`: enqueues a block of transactions for atomic
    /// broadcast (Algorithm 3 lines 32–33). Blocks enqueued before the
    /// simulation starts ride the earliest vertices.
    pub fn a_bcast(&mut self, block: Block) {
        self.core.enqueue_block(block);
    }

    /// The `a_deliver` log: every vertex (block) in its final total-order
    /// position.
    pub fn ordered(&self) -> &[OrderedVertex] {
        self.ordering.log()
    }

    /// Per-wave commit outcomes (experiment bookkeeping).
    pub fn commits(&self) -> &[CommitEvent] {
        self.ordering.commits()
    }

    /// The local DAG view.
    pub fn dag(&self) -> &Dag {
        self.core.dag()
    }

    /// The construction layer's current round.
    pub fn current_round(&self) -> Round {
        self.core.round()
    }

    /// The highest wave whose leader this node committed.
    pub fn decided_wave(&self) -> Wave {
        self.ordering.decided_wave()
    }

    /// Messages that failed to decode (malicious/corrupt wire bytes).
    pub fn decode_failures(&self) -> usize {
        self.decode_failures
    }

    /// Vertices dropped by garbage collection so far.
    pub fn vertices_pruned(&self) -> usize {
        self.vertices_pruned
    }

    /// The node's tracer handle (disabled unless
    /// [`NodeConfig::trace_capacity`] was set).
    pub fn tracer(&self) -> &SharedTracer {
        &self.tracer
    }

    /// The trace ring's contents, oldest first (empty when tracing is
    /// off).
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        self.tracer.records()
    }

    /// Broadcast-to-delivery latency of this node's **own** vertices, in
    /// ticks: for every own vertex in the ordered log, the gap between
    /// handing it to the broadcast layer and `a_deliver`-ing it locally.
    /// This is the client-visible commit latency the §6.2 time-complexity
    /// analysis bounds.
    pub fn own_vertex_latencies(&self) -> Vec<(Round, u64)> {
        self.ordering
            .log()
            .iter()
            .filter(|o| o.vertex.source == self.me)
            .filter_map(|o| {
                self.broadcast_at
                    .get(&o.vertex.round)
                    .map(|&sent| (o.vertex.round, o.delivered_at.ticks() - sent.ticks()))
            })
            .collect()
    }

    fn send_node_message(ctx: &mut Context<'_>, to: ProcessId, msg: &NodeMessage<B::Message>) {
        ctx.send(to, Bytes::from(msg.to_bytes()));
    }

    /// Routes a batch of RBC actions plus all their knock-on effects.
    fn drive(&mut self, initial: Vec<RbcAction<B::Message>>, ctx: &mut Context<'_>) {
        let mut queue: VecDeque<RbcAction<B::Message>> = initial.into();
        while let Some(action) = queue.pop_front() {
            match action {
                RbcAction::Send(to, m) => {
                    Self::send_node_message(ctx, to, &NodeMessage::Rbc(m));
                }
                RbcAction::Deliver(delivery) => {
                    self.tracer.record(TraceEvent::VertexRbcDelivered {
                        vertex: VertexRef::new(delivery.round, delivery.source),
                    });
                    let Ok(payload) = VertexPayload::from_bytes(&delivery.payload) else {
                        self.decode_failures += 1;
                        continue;
                    };
                    // Piggybacked shares are only valid from their issuer
                    // (the broadcast authenticates the vertex's creator).
                    for share in payload.coin_shares {
                        if share.issuer() != delivery.source {
                            self.decode_failures += 1;
                            continue;
                        }
                        let wave = Wave::new(share.instance());
                        if let Ok(Some(leader)) = self.coin.add_share(share) {
                            self.ordering.on_leader(wave, leader, self.core.dag(), ctx.now());
                        }
                    }
                    let events =
                        self.core.on_vertex(payload.vertex, delivery.source, delivery.round);
                    self.handle_dag_events(events, ctx, &mut queue);
                }
            }
        }
    }

    fn handle_dag_events(
        &mut self,
        events: Vec<DagEvent>,
        ctx: &mut Context<'_>,
        queue: &mut VecDeque<RbcAction<B::Message>>,
    ) {
        for event in events {
            match event {
                DagEvent::Broadcast(vertex) => {
                    let round = vertex.round();
                    self.broadcast_at.insert(round, ctx.now());
                    let coin_shares = if self.config.piggyback_coin {
                        std::mem::take(&mut self.pending_shares)
                    } else {
                        Vec::new()
                    };
                    let payload = VertexPayload { vertex, coin_shares }.to_bytes();
                    queue.extend(self.rbc.rbcast(payload, round, ctx.rng()));
                }
                DagEvent::WaveReady(wave) => {
                    // Flip the coin only now that the wave is complete
                    // (line 35 — unpredictability requires revealing the
                    // share no earlier).
                    let share = self.coin.my_share(wave.number(), ctx.rng());
                    if self.config.piggyback_coin {
                        // Ride the next vertex (the round 4w+1 broadcast,
                        // which immediately follows this event).
                        self.pending_shares.push(share);
                    } else {
                        let msg: NodeMessage<B::Message> = NodeMessage::Coin(share);
                        let encoded = Bytes::from(msg.to_bytes());
                        for to in self.committee.others(self.me) {
                            ctx.send(to, encoded.clone());
                        }
                    }
                    self.ordering.on_wave_complete(wave, self.core.dag(), ctx.now());
                    if let Some(leader) = self.coin.leader(wave.number()) {
                        self.ordering.on_leader(wave, leader, self.core.dag(), ctx.now());
                    }
                }
            }
        }
    }

    /// End-of-callback housekeeping: flush shares that found no vertex to
    /// ride (finite runs stop broadcasting at `max_round`), then garbage
    /// collect.
    fn finish_turn(&mut self, ctx: &mut Context<'_>) {
        for share in std::mem::take(&mut self.pending_shares) {
            let msg: NodeMessage<B::Message> = NodeMessage::Coin(share);
            let encoded = Bytes::from(msg.to_bytes());
            for to in self.committee.others(self.me) {
                ctx.send(to, encoded.clone());
            }
        }
        self.maybe_gc();
    }

    /// Prunes every round strictly below the fully-delivered prefix minus
    /// the configured safety margin.
    fn maybe_gc(&mut self) {
        let Some(depth) = self.config.gc_depth else { return };
        // The lowest round still holding an undelivered vertex bounds what
        // is safe to drop.
        let mut frontier =
            self.core.dag().lowest_retained_round().unwrap_or(dagrider_types::Round::new(1));
        let high = self.core.dag().highest_round();
        while frontier <= high
            && !self.core.dag().round_vertices(frontier).is_empty()
            && self
                .core
                .dag()
                .round_vertices(frontier)
                .values()
                .map(dagrider_types::Vertex::reference)
                .all(|r| self.ordering.is_delivered(r))
        {
            frontier = frontier.next();
        }
        let keep_from = dagrider_types::Round::new(frontier.number().saturating_sub(depth));
        if keep_from > self.core.dag().pruned_floor() {
            // Advancing the floor also rebases the reachability engine's
            // slot space and rebuilds retained closures (see Dag::prune_below),
            // so prune only when the floor actually moves.
            self.vertices_pruned += self.core.prune_below(keep_from);
            self.ordering.prune_delivered_below(keep_from);
            self.rbc.prune(keep_from);
            // Coin aggregators for waves entirely below the floor.
            self.coin.prune(keep_from.wave().number().saturating_sub(1));
        }
    }
}

impl<B: ReliableBroadcast> Actor for DagRiderNode<B> {
    fn init(&mut self, ctx: &mut Context<'_>) {
        self.tracer.set_now(ctx.now());
        let events = self.core.start();
        let mut queue = VecDeque::new();
        self.handle_dag_events(events, ctx, &mut queue);
        self.drive(queue.into_iter().collect(), ctx);
        self.finish_turn(ctx);
    }

    fn on_message(&mut self, from: ProcessId, payload: &[u8], ctx: &mut Context<'_>) {
        self.tracer.set_now(ctx.now());
        match NodeMessage::<B::Message>::from_bytes(payload) {
            Ok(NodeMessage::Rbc(m)) => {
                let actions = self.rbc.on_message(from, m, ctx.rng());
                self.drive(actions, ctx);
            }
            Ok(NodeMessage::Coin(share)) => {
                // Shares from non-issuers or with bad proofs are rejected
                // inside the coin.
                if share.issuer() != from {
                    self.decode_failures += 1;
                    return;
                }
                let wave = Wave::new(share.instance());
                if let Ok(Some(leader)) = self.coin.add_share(share) {
                    self.ordering.on_leader(wave, leader, self.core.dag(), ctx.now());
                }
            }
            Err(_) => self.decode_failures += 1,
        }
        self.finish_turn(ctx);
    }
}

#[cfg(test)]
mod tests {
    use dagrider_crypto::deal_coin_keys;
    use dagrider_rbc::{AvidRbc, BrachaRbc, ProbabilisticRbc};
    use dagrider_simnet::{Simulation, UniformScheduler};
    use dagrider_types::{SeqNum, Transaction};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn build_sim<B: ReliableBroadcast>(
        n: usize,
        seed: u64,
        max_round: u64,
    ) -> Simulation<DagRiderNode<B>, UniformScheduler> {
        let committee = Committee::new(n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = deal_coin_keys(&committee, &mut rng);
        let config = NodeConfig::default().with_max_round(max_round);
        let nodes = committee
            .members()
            .zip(keys)
            .map(|(p, k)| DagRiderNode::<B>::new(committee, p, k, config.clone()))
            .collect();
        Simulation::new(committee, nodes, UniformScheduler::new(1, 10), seed)
    }

    fn assert_total_order<B: ReliableBroadcast>(
        sim: &Simulation<DagRiderNode<B>, UniformScheduler>,
    ) {
        let committee = sim.committee();
        let logs: Vec<Vec<_>> = committee
            .members()
            .map(|p| sim.actor(p).ordered().iter().map(|o| o.vertex).collect())
            .collect();
        // Total order: every pair of logs must be prefix-comparable.
        for (i, a) in logs.iter().enumerate() {
            for b in logs.iter().skip(i + 1) {
                let common = a.len().min(b.len());
                assert_eq!(&a[..common], &b[..common], "logs diverge");
            }
        }
    }

    #[test]
    fn bracha_stack_reaches_agreement() {
        let sim = {
            let mut s = build_sim::<BrachaRbc>(4, 11, 24);
            s.run();
            s
        };
        assert_total_order(&sim);
        let min_len =
            sim.committee().members().map(|p| sim.actor(p).ordered().len()).min().unwrap();
        assert!(min_len > 0, "at least one wave must commit");
        assert!(sim.actor(ProcessId::new(0)).decided_wave() >= Wave::new(1));
    }

    #[test]
    fn avid_stack_reaches_agreement() {
        let mut sim = build_sim::<AvidRbc>(4, 13, 24);
        sim.run();
        assert_total_order(&sim);
        assert!(!sim.actor(ProcessId::new(0)).ordered().is_empty());
    }

    #[test]
    fn probabilistic_stack_reaches_agreement() {
        let mut sim = build_sim::<ProbabilisticRbc>(4, 17, 24);
        sim.run();
        assert_total_order(&sim);
    }

    #[test]
    fn client_blocks_ride_the_dag() {
        let mut sim = build_sim::<BrachaRbc>(4, 19, 24);
        let tx = Transaction::synthetic(99, 32);
        let block = Block::new(ProcessId::new(2), SeqNum::new(1), vec![tx.clone()]);
        sim.actor_mut(ProcessId::new(2)).a_bcast(block);
        sim.run();
        // The block is ordered at every process.
        for p in sim.committee().members() {
            let found = sim.actor(p).ordered().iter().any(|o| o.block.transactions().contains(&tx));
            assert!(found, "{p} did not order the client block");
        }
    }

    #[test]
    fn seeds_change_schedules_but_never_order() {
        for seed in [1u64, 2, 3] {
            let mut sim = build_sim::<BrachaRbc>(4, seed, 16);
            sim.run();
            assert_total_order(&sim);
        }
    }

    #[test]
    fn larger_committee_commits() {
        let mut sim = build_sim::<BrachaRbc>(7, 23, 16);
        sim.run();
        assert_total_order(&sim);
        assert!(sim.actor(ProcessId::new(0)).decided_wave() >= Wave::new(1));
    }

    #[test]
    fn node_message_codec_roundtrip() {
        let committee = Committee::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let keys = deal_coin_keys(&committee, &mut rng);
        let share = {
            let mut coin = Coin::new(keys[0].clone());
            coin.my_share(3, &mut rng)
        };
        let msg: NodeMessage<dagrider_rbc::BrachaMessage> = NodeMessage::Coin(share);
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(NodeMessage::<dagrider_rbc::BrachaMessage>::from_bytes(&bytes).unwrap(), msg);

        let rbc_msg = dagrider_rbc::BrachaMessage {
            source: ProcessId::new(0),
            round: Round::new(1),
            kind: dagrider_rbc::BrachaKind::Init(vec![1, 2, 3]),
        };
        let msg = NodeMessage::Rbc(rbc_msg);
        let bytes = msg.to_bytes();
        assert_eq!(NodeMessage::<dagrider_rbc::BrachaMessage>::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn piggybacked_coin_commits_without_dedicated_share_messages() {
        // §5 footnote 1: shares ride the DAG. The protocol must still
        // commit, and (except for the end-of-run flush) no NodeMessage::
        // Coin traffic is needed.
        let committee = Committee::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let keys = deal_coin_keys(&committee, &mut rng);
        let config = NodeConfig::default().with_max_round(24).with_piggyback_coin();
        let nodes: Vec<DagRiderNode<BrachaRbc>> = committee
            .members()
            .zip(keys)
            .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
            .collect();
        let mut sim =
            dagrider_simnet::Simulation::new(committee, nodes, UniformScheduler::new(1, 10), 41);
        sim.run();
        assert_total_order(&sim);
        for p in committee.members() {
            assert!(
                sim.actor(p).decided_wave() >= Wave::new(4),
                "{p} only decided {}",
                sim.actor(p).decided_wave()
            );
        }
    }

    #[test]
    fn piggyback_and_dedicated_modes_agree_on_message_overhead() {
        // Piggybacking removes the n·(n-1) dedicated share messages per
        // wave (minus the end-of-run flush).
        let run = |piggyback: bool| {
            let committee = Committee::new(4).unwrap();
            let mut rng = StdRng::seed_from_u64(43);
            let keys = deal_coin_keys(&committee, &mut rng);
            let mut config = NodeConfig::default().with_max_round(20);
            config.piggyback_coin = piggyback;
            let nodes: Vec<DagRiderNode<BrachaRbc>> = committee
                .members()
                .zip(keys)
                .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
                .collect();
            let mut sim = dagrider_simnet::Simulation::new(
                committee,
                nodes,
                UniformScheduler::new(1, 10),
                43,
            );
            sim.run();
            (sim.metrics().messages_sent(), sim.actor(ProcessId::new(0)).decided_wave())
        };
        let (dedicated_msgs, dedicated_wave) = run(false);
        let (piggyback_msgs, piggyback_wave) = run(true);
        assert!(piggyback_msgs < dedicated_msgs, "{piggyback_msgs} !< {dedicated_msgs}");
        assert!(dedicated_wave >= Wave::new(3) && piggyback_wave >= Wave::new(3));
    }

    #[test]
    fn garbage_collection_prunes_without_breaking_order() {
        let committee = Committee::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(47);
        let keys = deal_coin_keys(&committee, &mut rng);
        let config = NodeConfig::default().with_max_round(40).with_gc_depth(8);
        let nodes: Vec<DagRiderNode<BrachaRbc>> = committee
            .members()
            .zip(keys)
            .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
            .collect();
        let mut sim =
            dagrider_simnet::Simulation::new(committee, nodes, UniformScheduler::new(1, 10), 47);
        sim.run();
        assert_total_order(&sim);
        for p in committee.members() {
            let node = sim.actor(p);
            assert!(node.vertices_pruned() > 0, "{p} never pruned anything");
            assert!(node.dag().pruned_floor() > Round::new(1), "{p}'s GC floor never advanced");
            // Ordered output is unaffected: a 40-round run still orders
            // nearly everything.
            assert!(node.ordered().len() > 100, "{p} ordered {}", node.ordered().len());
        }
        // And the retained DAG is small: at most gc_depth + in-flight
        // rounds of vertices plus genesis.
        let node = sim.actor(ProcessId::new(0));
        assert!(node.dag().len() < 4 * 24, "GC left {} vertices in the DAG", node.dag().len());
    }

    #[test]
    fn gc_and_piggyback_compose() {
        let committee = Committee::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(53);
        let keys = deal_coin_keys(&committee, &mut rng);
        let config =
            NodeConfig::default().with_max_round(32).with_gc_depth(8).with_piggyback_coin();
        let nodes: Vec<DagRiderNode<BrachaRbc>> = committee
            .members()
            .zip(keys)
            .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
            .collect();
        let mut sim =
            dagrider_simnet::Simulation::new(committee, nodes, UniformScheduler::new(1, 10), 53);
        sim.run();
        assert_total_order(&sim);
        assert!(sim.actor(ProcessId::new(2)).decided_wave() >= Wave::new(5));
    }

    #[test]
    fn vertex_payload_codec_roundtrip() {
        let committee = Committee::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(59);
        let keys = deal_coin_keys(&committee, &mut rng);
        let share = Coin::new(keys[0].clone()).my_share(2, &mut rng);
        let payload =
            VertexPayload { vertex: Vertex::genesis(ProcessId::new(1)), coin_shares: vec![share] };
        let bytes = payload.to_bytes();
        assert_eq!(bytes.len(), payload.encoded_len());
        assert_eq!(VertexPayload::from_bytes(&bytes).unwrap(), payload);
        // Empty share list costs exactly one extra byte over the vertex.
        let bare =
            VertexPayload { vertex: Vertex::genesis(ProcessId::new(1)), coin_shares: Vec::new() };
        assert_eq!(bare.encoded_len(), bare.vertex.encoded_len() + 1);
    }

    #[test]
    fn own_vertex_latencies_are_positive_and_cover_ordered_vertices() {
        let mut sim = build_sim::<BrachaRbc>(4, 31, 20);
        sim.run();
        for p in sim.committee().members() {
            let node = sim.actor(p);
            let latencies = node.own_vertex_latencies();
            let own_ordered = node.ordered().iter().filter(|o| o.vertex.source == p).count();
            assert_eq!(latencies.len(), own_ordered, "{p}: every own ordered vertex measured");
            assert!(latencies.iter().all(|&(_, l)| l > 0), "{p}: zero-latency commit?");
            // (Rounds are *not* necessarily monotone in the log: a
            // weak-edge orphan can be delivered by a later wave than a
            // younger vertex. Each round appears at most once, though.)
            let mut rounds: Vec<_> = latencies.iter().map(|&(r, _)| r).collect();
            rounds.sort();
            rounds.dedup();
            assert_eq!(rounds.len(), latencies.len());
        }
    }

    #[test]
    fn commit_latency_is_recorded() {
        let mut sim = build_sim::<BrachaRbc>(4, 29, 24);
        sim.run();
        let node = sim.actor(ProcessId::new(1));
        for window in node.ordered().windows(2) {
            assert!(window[0].delivered_at <= window[1].delivered_at);
        }
        assert!(!node.commits().is_empty());
    }
}
