//! Property tests for the [`NodeMessage`] wire envelope — the only bytes
//! a DAG-Rider process ever sends. Every representable message
//! round-trips exactly, unknown envelope tags are rejected, and no
//! truncation of a valid encoding decodes (so a cut TCP frame can never
//! be mistaken for a shorter valid message).

use dagrider_core::NodeMessage;
use dagrider_crypto::{deal_coin_keys, Coin, CoinShare};
use dagrider_rbc::{BrachaKind, BrachaMessage};
use dagrider_types::{Committee, Decode, DecodeError, Encode, ProcessId, Round};
use proptest::prelude::*;

/// Expands integers into a [`BrachaMessage`] covering all three phases.
fn make_rbc(phase: u8, source: u32, round: u64, payload: Vec<u8>) -> BrachaMessage {
    let kind = match phase % 3 {
        0 => BrachaKind::Init(payload),
        1 => BrachaKind::Echo(payload),
        _ => BrachaKind::Ready(payload),
    };
    BrachaMessage { source: ProcessId::new(source), round: Round::new(round), kind }
}

/// A real threshold-coin share (fields are private by design, so shares
/// are produced by the issuing process's own keys — like on the wire).
fn make_share(issuer_index: usize, instance: u64, seed: u64) -> CoinShare {
    use rand::{rngs::StdRng, SeedableRng};
    let committee = Committee::new(4).expect("4 is a valid committee size");
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = deal_coin_keys(&committee, &mut rng);
    let mut coin = Coin::new(keys.into_iter().nth(issuer_index % 4).expect("n = 4 keys dealt"));
    coin.my_share(instance, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn rbc_messages_roundtrip(
        phase in 0u8..3,
        source in 0u32..1_000,
        round in 0u64..1_000_000,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let msg = NodeMessage::Rbc(make_rbc(phase, source, round, payload));
        let bytes = msg.to_bytes();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        prop_assert_eq!(NodeMessage::<BrachaMessage>::from_bytes(&bytes).expect("roundtrip"), msg);
    }

    #[test]
    fn coin_shares_roundtrip(
        issuer in 0usize..4,
        instance in 0u64..10_000,
        seed in 0u64..1_000,
    ) {
        let msg = NodeMessage::<BrachaMessage>::Coin(make_share(issuer, instance, seed));
        let bytes = msg.to_bytes();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        prop_assert_eq!(NodeMessage::<BrachaMessage>::from_bytes(&bytes).expect("roundtrip"), msg);
    }

    #[test]
    fn unknown_envelope_tags_are_rejected(
        tag in 2u8..=255,
        tail in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = vec![tag];
        bytes.extend(tail);
        prop_assert_eq!(
            NodeMessage::<BrachaMessage>::from_bytes(&bytes),
            Err(DecodeError::Invalid("unknown node message tag"))
        );
    }

    #[test]
    fn no_strict_prefix_of_an_rbc_message_decodes(
        phase in 0u8..3,
        source in 0u32..1_000,
        round in 0u64..1_000_000,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let bytes = NodeMessage::Rbc(make_rbc(phase, source, round, payload)).to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                NodeMessage::<BrachaMessage>::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {} of {} decoded", cut, bytes.len()
            );
        }
    }

    #[test]
    fn no_strict_prefix_of_a_coin_share_decodes(
        issuer in 0usize..4,
        instance in 0u64..10_000,
    ) {
        let bytes = NodeMessage::<BrachaMessage>::Coin(make_share(issuer, instance, 7)).to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                NodeMessage::<BrachaMessage>::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {} of {} decoded", cut, bytes.len()
            );
        }
    }
}
