//! Compacted store snapshots: a [`DagSnapshot`] plus the extra engine
//! state a recovering node needs that the DAG alone does not carry.
//!
//! A snapshot captures three things from a live engine:
//!
//! 1. the retained DAG (every vertex above the GC floor, digested per
//!    entry — the `DAGSNAP1` format shared with `dagrider-analysis`),
//! 2. the **opened coin leaders** `(wave, leader)` for every wave whose
//!    share threshold this process has already crossed — the coin
//!    aggregator drops share proofs after opening, so individual shares
//!    cannot be re-serialized, but the opened result is all replay
//!    needs, and
//! 3. the **worker batches** currently in the engine's batch store, so
//!    digest-carrying vertices can resolve to transactions without
//!    refetching from peers.
//!
//! Installing a snapshot truncates the WAL: the snapshot supersedes
//! every record appended before it, and the WAL restarts empty as the
//! tail beyond the snapshot.

use dagrider_analysis::DagSnapshot;
use dagrider_core::DagRiderEngine;
use dagrider_rbc::ReliableBroadcast;
use dagrider_types::{Batch, Decode, DecodeError, Encode, ProcessId};

/// Magic prefix of the store snapshot file format (the nested DAG
/// section carries its own `DAGSNAP1` magic).
const MAGIC: [u8; 8] = *b"DAGSTOR1";

/// A compacted checkpoint of one node's durable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSnapshot {
    dag: DagSnapshot,
    leaders: Vec<(u64, ProcessId)>,
    batches: Vec<Batch>,
}

impl StoreSnapshot {
    /// Captures a snapshot of `engine`'s durable state: retained DAG,
    /// opened coin leaders, and stored worker batches.
    #[must_use]
    pub fn capture<B: ReliableBroadcast>(engine: &DagRiderEngine<B>) -> Self {
        Self {
            dag: DagSnapshot::capture(engine.dag()),
            leaders: engine.coin_leaders(),
            batches: engine.stored_batches(),
        }
    }

    /// Assembles a snapshot from already-separated parts.
    #[must_use]
    pub fn from_parts(
        dag: DagSnapshot,
        leaders: Vec<(u64, ProcessId)>,
        batches: Vec<Batch>,
    ) -> Self {
        Self { dag, leaders, batches }
    }

    /// The captured DAG section.
    #[must_use]
    pub fn dag(&self) -> &DagSnapshot {
        &self.dag
    }

    /// Opened coin results as `(wave number, leader)` pairs, ascending.
    #[must_use]
    pub fn leaders(&self) -> &[(u64, ProcessId)] {
        &self.leaders
    }

    /// Worker batches held in the batch store at capture time.
    #[must_use]
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }
}

impl Encode for StoreSnapshot {
    fn encode(&self, buf: &mut Vec<u8>) {
        MAGIC.encode(buf);
        self.dag.encode(buf);
        self.leaders.encode(buf);
        self.batches.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        MAGIC.encoded_len()
            + self.dag.encoded_len()
            + self.leaders.encoded_len()
            + self.batches.encoded_len()
    }
}

impl Decode for StoreSnapshot {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let magic = <[u8; 8]>::decode(buf)?;
        if magic != MAGIC {
            return Err(DecodeError::Invalid("not a store snapshot (bad magic)"));
        }
        let dag = DagSnapshot::decode(buf)?;
        let leaders = Vec::<(u64, ProcessId)>::decode(buf)?;
        let batches = Vec::<Batch>::decode(buf)?;
        Ok(Self { dag, leaders, batches })
    }
}
