//! Append-only write-ahead log of [`DurableEvent`]s.
//!
//! # On-disk format
//!
//! The log is a flat sequence of self-delimiting records:
//!
//! ```text
//! ┌────────────┬─────────────────┬───────────────────┐
//! │ len  (u32) │ crc32   (u32)   │ payload (len B)   │
//! │ little-end │ of the payload  │ DurableEvent codec│
//! └────────────┴─────────────────┴───────────────────┘
//! ```
//!
//! The payload is the canonical [`DurableEvent`] encoding and is decoded
//! with the strict `from_bytes` entry point, so trailing garbage inside
//! a record is rejected just like a checksum mismatch.
//!
//! # Recovery contract
//!
//! [`scan_wal`] walks the file front to back and stops at the **first**
//! defect: everything before it is returned as the replayable tail,
//! everything at and after it is discarded ([`Wal::open`] truncates the
//! file there). A torn header or torn record is the expected artifact of
//! a crash mid-append ([`WalDefect::is_torn_tail`]); a checksum mismatch
//! or malformed payload indicates corruption and is surfaced distinctly
//! so tests and operators can tell the two apart. Records after a defect
//! are unrecoverable by design — without a valid length prefix there is
//! no resynchronization point — which is exactly the semantics the
//! crash-safety argument needs: losing a suffix of the log is equivalent
//! to having crashed slightly earlier.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dagrider_core::DurableEvent;
use dagrider_types::{Decode, DecodeError, Encode};

use crate::crc::crc32;

/// Bytes of framing before each record payload: `len: u32` + `crc: u32`.
pub const RECORD_HEADER_LEN: usize = 8;

/// Upper bound on a single record payload. Mirrors the codec's own
/// `MAX_DECODED_LEN` guard: a length prefix above this is classified as
/// [`WalDefect::LengthOverflow`] rather than attempted.
pub const MAX_RECORD_LEN: usize = 1 << 28;

/// The first defect found while scanning a WAL, with the byte offset of
/// the record that exhibits it. The log is valid strictly before the
/// offset and discarded from it onward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalDefect {
    /// The file ends inside a record header (`found < 8` bytes left).
    TornHeader {
        /// Offset of the truncated header.
        offset: u64,
        /// Header bytes actually present.
        found: usize,
    },
    /// The header is intact but the file ends inside the payload.
    TornRecord {
        /// Offset of the truncated record.
        offset: u64,
        /// Payload length the header promised.
        expected: usize,
        /// Payload bytes actually present.
        found: usize,
    },
    /// The length prefix exceeds [`MAX_RECORD_LEN`] — a corrupt header,
    /// not a plausibly torn one.
    LengthOverflow {
        /// Offset of the offending record.
        offset: u64,
        /// The advertised payload length.
        length: u64,
    },
    /// The payload is complete but its CRC-32 does not match the header.
    ChecksumMismatch {
        /// Offset of the offending record.
        offset: u64,
    },
    /// The checksum matches but the payload is not a valid
    /// [`DurableEvent`] encoding (including trailing bytes).
    Malformed {
        /// Offset of the offending record.
        offset: u64,
        /// The codec error.
        error: DecodeError,
    },
}

impl WalDefect {
    /// Byte offset at which the log stops being valid.
    #[must_use]
    pub fn offset(&self) -> u64 {
        match *self {
            Self::TornHeader { offset, .. }
            | Self::TornRecord { offset, .. }
            | Self::LengthOverflow { offset, .. }
            | Self::ChecksumMismatch { offset }
            | Self::Malformed { offset, .. } => offset,
        }
    }

    /// Whether the defect is the benign signature of a crash mid-append
    /// (a truncated final record) rather than corruption of previously
    /// synced data.
    #[must_use]
    pub fn is_torn_tail(&self) -> bool {
        matches!(self, Self::TornHeader { .. } | Self::TornRecord { .. })
    }
}

impl fmt::Display for WalDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TornHeader { offset, found } => {
                write!(
                    f,
                    "torn record header at byte {offset} ({found} of {RECORD_HEADER_LEN} bytes)"
                )
            }
            Self::TornRecord { offset, expected, found } => {
                write!(f, "torn record at byte {offset} ({found} of {expected} payload bytes)")
            }
            Self::LengthOverflow { offset, length } => {
                write!(
                    f,
                    "record at byte {offset} advertises {length} bytes (max {MAX_RECORD_LEN})"
                )
            }
            Self::ChecksumMismatch { offset } => {
                write!(f, "checksum mismatch in record at byte {offset}")
            }
            Self::Malformed { offset, error } => {
                write!(f, "malformed record payload at byte {offset}: {error}")
            }
        }
    }
}

/// The result of scanning a WAL byte image: the decoded events, how many
/// leading bytes were valid, and the first defect (if any) that stopped
/// the scan.
#[derive(Debug)]
pub struct WalScan {
    /// Every intact record, in append order.
    pub events: Vec<DurableEvent>,
    /// Length of the valid prefix in bytes; the file is truncated here.
    pub valid_len: u64,
    /// The defect that ended the scan, or `None` for a clean log.
    pub defect: Option<WalDefect>,
}

/// Appends the framed encoding of `event` to `buf`.
pub fn encode_record(event: &DurableEvent, buf: &mut Vec<u8>) {
    let start = buf.len();
    buf.extend_from_slice(&[0u8; RECORD_HEADER_LEN]);
    event.encode(buf);
    let payload_len = buf.len() - start - RECORD_HEADER_LEN;
    let crc = crc32(&buf[start + RECORD_HEADER_LEN..]);
    let len_bytes = u32::try_from(payload_len)
        .expect("DurableEvent encodings are bounded far below u32::MAX")
        .to_le_bytes();
    buf[start..start + 4].copy_from_slice(&len_bytes);
    buf[start + 4..start + RECORD_HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
}

/// Scans a WAL byte image front to back, stopping at the first defect.
#[must_use]
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut events = Vec::new();
    let mut offset = 0usize;
    let mut defect = None;
    while offset < bytes.len() {
        let remaining = &bytes[offset..];
        if remaining.len() < RECORD_HEADER_LEN {
            defect = Some(WalDefect::TornHeader { offset: offset as u64, found: remaining.len() });
            break;
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&remaining[..4]);
        let length = u32::from_le_bytes(len_bytes) as usize;
        if length > MAX_RECORD_LEN {
            defect =
                Some(WalDefect::LengthOverflow { offset: offset as u64, length: length as u64 });
            break;
        }
        let mut crc_bytes = [0u8; 4];
        crc_bytes.copy_from_slice(&remaining[4..RECORD_HEADER_LEN]);
        let expected_crc = u32::from_le_bytes(crc_bytes);
        let body = &remaining[RECORD_HEADER_LEN..];
        if body.len() < length {
            defect = Some(WalDefect::TornRecord {
                offset: offset as u64,
                expected: length,
                found: body.len(),
            });
            break;
        }
        let payload = &body[..length];
        if crc32(payload) != expected_crc {
            defect = Some(WalDefect::ChecksumMismatch { offset: offset as u64 });
            break;
        }
        match DurableEvent::from_bytes(payload) {
            Ok(event) => events.push(event),
            Err(error) => {
                defect = Some(WalDefect::Malformed { offset: offset as u64, error });
                break;
            }
        }
        offset += RECORD_HEADER_LEN + length;
    }
    WalScan { events, valid_len: offset as u64, defect }
}

/// An open WAL file positioned for appending.
///
/// Created by [`Wal::open`], which scans any existing contents and
/// truncates the file at the first defect so the append position is
/// always the end of a fully valid prefix.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
}

impl Wal {
    /// Opens (creating if absent) the WAL at `path`, returning the file
    /// handle positioned at the end of the valid prefix plus the scan of
    /// that prefix.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from reading, opening, or truncating
    /// the file.
    pub fn open(path: &Path) -> io::Result<(Self, WalScan)> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(error) if error.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(error) => return Err(error),
        };
        let scan = scan_wal(&bytes);
        // Keep existing contents: the valid prefix is preserved and any
        // defective tail is cut explicitly via `set_len` below.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        if scan.valid_len < bytes.len() as u64 {
            file.set_len(scan.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scan.valid_len))?;
        let wal = Self { file, path: path.to_path_buf(), len: scan.valid_len };
        Ok((wal, scan))
    }

    /// Appends one framed record. The write reaches the OS but is not
    /// fsynced; call [`Wal::sync`] to make it durable.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn append(&mut self, event: &DurableEvent) -> io::Result<()> {
        let mut record = Vec::new();
        encode_record(event, &mut record);
        self.append_raw(&record)
    }

    /// Appends raw bytes with no framing — the fault-injection escape
    /// hatch used to plant torn and bit-flipped records.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn append_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Forces appended records to stable storage (`fdatasync`).
    ///
    /// # Errors
    ///
    /// Propagates the underlying sync error.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Discards the entire log: truncates to zero, fsyncs, and rewinds
    /// the append position. Called when a snapshot supersedes the tail.
    ///
    /// # Errors
    ///
    /// Propagates the underlying truncate/sync error.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::Start(0))?;
        self.len = 0;
        Ok(())
    }

    /// Bytes of valid log currently on disk (plus unsynced appends).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The file path backing this log.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}
