//! **Durable DAG store** — crash recovery for DAG-Rider nodes.
//!
//! DAG-Rider's engine is a deterministic sans-I/O state machine: feed it
//! the same inputs and it emits byte-identical outputs. This crate
//! exploits that determinism for durability. Instead of checkpointing
//! opaque engine internals, a node appends the small set of
//! **engine-visible durable events** — delivered vertices, accepted coin
//! shares, stored worker batches, ordering commits — to a write-ahead
//! log ([`Wal`]), and recovery simply replays them into a fresh engine
//! ([`replay_into`]). Periodically the log is compacted into a
//! [`StoreSnapshot`] (the retained DAG in the `DAGSNAP1` format shared
//! with `dagrider-analysis`, plus opened coin leaders and stored
//! batches), after which the WAL restarts empty.
//!
//! The crash-safety contract is deliberately modest: the store is a
//! **recovery accelerator**, not the safety root. Losing an unsynced WAL
//! suffix — or the entire store — is equivalent to having crashed
//! earlier; the recovering node replays what it has and then uses the
//! ordinary rejoin-sync path to fetch only the missed suffix from
//! peers, who by quorum intersection hold everything a correct node
//! ever delivered. What the store *must* guarantee is the converse:
//! replay never delivers anything the pre-crash run did not, in an
//! order it did not — the prefix property the kill-and-restart
//! equivalence tests and `DagAuditor::audit_recovery` pin.
//!
//! [`DurableStore`] manages the directory (`dag.wal` + `dag.snap`),
//! group-commit [`FsyncPolicy`]s, atomic snapshot installation, and a
//! [`FaultPlan`] hook that simulates a kill, torn write, or bit-flip at
//! any chosen append boundary for the fault-injection test matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod replay;
mod snapshot;
mod store;
mod wal;

pub use crc::crc32;
pub use replay::{replay_into, ReplayStats};
pub use snapshot::StoreSnapshot;
pub use store::{
    DurableStore, FaultKind, FaultPlan, FsyncPolicy, Recovered, SNAPSHOT_FILE, WAL_FILE,
};
pub use wal::{
    encode_record, scan_wal, Wal, WalDefect, WalScan, MAX_RECORD_LEN, RECORD_HEADER_LEN,
};
