//! The on-disk store directory: one WAL plus at most one snapshot,
//! with group-commit fsync policies and a crash-point fault hook.
//!
//! # Directory layout
//!
//! ```text
//! <dir>/dag.wal       append-only record log (see crate::wal)
//! <dir>/dag.snap      latest compacted StoreSnapshot, atomically renamed
//! <dir>/dag.snap.tmp  in-flight snapshot write (discarded on recovery)
//! ```
//!
//! # Durability protocol
//!
//! Appends buffer in the OS page cache; [`DurableStore::commit`] marks a
//! group boundary and fsyncs per the configured [`FsyncPolicy`].
//! Snapshots are installed crash-safely: write to `dag.snap.tmp`, fsync
//! the file, `rename` over `dag.snap`, fsync the directory, then reset
//! the WAL. A crash at any point leaves either the old snapshot + old
//! WAL or the new snapshot + (old or empty) WAL — both replayable,
//! because the snapshot strictly supersedes every WAL record that
//! preceded its capture and replaying superseded records is idempotent.
//!
//! # Fault injection
//!
//! [`DurableStore::set_fault`] arms a [`FaultPlan`] that fires at a
//! chosen append index: the store simulates a crash at that exact
//! boundary (optionally leaving a torn or bit-flipped record behind)
//! and goes **dead** — every later operation is a silent no-op, exactly
//! as if the process had been SIGKILLed with the file in that state.
//! Tests then reopen the directory and assert recovery invariants.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use dagrider_core::DurableEvent;
use dagrider_types::{Decode, Encode};

use crate::snapshot::StoreSnapshot;
use crate::wal::{encode_record, Wal, WalDefect};

/// File name of the WAL inside a store directory.
pub const WAL_FILE: &str = "dag.wal";
/// File name of the installed snapshot inside a store directory.
pub const SNAPSHOT_FILE: &str = "dag.snap";
/// Scratch name a snapshot is written to before the atomic rename.
const SNAPSHOT_TMP_FILE: &str = "dag.snap.tmp";

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync at every group-commit boundary. Safest, slowest.
    Always,
    /// Fsync once at least this many records accumulated since the last
    /// sync. Bounds the loss window to `n` records without serializing
    /// every commit on the disk.
    EveryN(u64),
    /// Never fsync (the OS flushes eventually). The whole unflushed
    /// suffix may vanish on a crash; recovery still works because a
    /// missing WAL suffix is equivalent to an earlier crash.
    Never,
}

/// What the injected fault leaves behind at the chosen append boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The record is never written: a crash just before the append.
    Crash,
    /// Only the first `keep` bytes of the framed record reach the file:
    /// a torn write.
    Torn {
        /// Framed-record bytes that survive (clamped to the record).
        keep: usize,
    },
    /// The whole record is written but one bit is flipped: silent media
    /// corruption the checksum must catch.
    BitFlip {
        /// Bit index into the framed record (taken modulo its length).
        bit: usize,
    },
}

/// A one-shot fault armed on a store: fires when the `at_append`-th
/// append (0-based) is attempted, then the store plays dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// 0-based index of the append at which the fault fires.
    pub at_append: u64,
    /// The damage left behind.
    pub kind: FaultKind,
}

/// Everything recovered from a store directory at open time.
#[derive(Debug)]
pub struct Recovered {
    /// The installed snapshot, if one exists and decodes cleanly.
    pub snapshot: Option<StoreSnapshot>,
    /// Why the snapshot was discarded, when present but undecodable.
    /// The node falls back to peer sync: the WAL was reset when the
    /// snapshot was installed, so the snapshot's contents exist on
    /// `2f + 1` correct peers by quorum intersection.
    pub snapshot_defect: Option<String>,
    /// The valid WAL suffix beyond the snapshot, in append order.
    pub tail: Vec<DurableEvent>,
    /// The defect (if any) at which the WAL was truncated.
    pub wal_defect: Option<WalDefect>,
}

impl Recovered {
    /// Whether nothing at all was recovered (fresh directory).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.tail.is_empty()
    }
}

/// An open store directory. See the module docs for the protocol.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    wal: Wal,
    policy: FsyncPolicy,
    unsynced: u64,
    appended: u64,
    fault: Option<FaultPlan>,
    dead: bool,
}

impl DurableStore {
    /// Opens (creating if needed) the store at `dir`, recovering any
    /// snapshot and WAL tail left by a previous run. A corrupt snapshot
    /// is discarded (reported via [`Recovered::snapshot_defect`]) rather
    /// than refused, and a leftover `dag.snap.tmp` from a crash
    /// mid-install is deleted.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than "not found".
    pub fn open(dir: &Path, policy: FsyncPolicy) -> io::Result<(Self, Recovered)> {
        fs::create_dir_all(dir)?;
        match fs::remove_file(dir.join(SNAPSHOT_TMP_FILE)) {
            Ok(()) => {}
            Err(error) if error.kind() == io::ErrorKind::NotFound => {}
            Err(error) => return Err(error),
        }
        let (snapshot, snapshot_defect) = match fs::read(dir.join(SNAPSHOT_FILE)) {
            Ok(bytes) => match StoreSnapshot::from_bytes(&bytes) {
                Ok(snapshot) => (Some(snapshot), None),
                Err(error) => (None, Some(error.to_string())),
            },
            Err(error) if error.kind() == io::ErrorKind::NotFound => (None, None),
            Err(error) => return Err(error),
        };
        let (wal, scan) = Wal::open(&dir.join(WAL_FILE))?;
        let store = Self {
            dir: dir.to_path_buf(),
            wal,
            policy,
            unsynced: 0,
            appended: 0,
            fault: None,
            dead: false,
        };
        let recovered =
            Recovered { snapshot, snapshot_defect, tail: scan.events, wal_defect: scan.defect };
        Ok((store, recovered))
    }

    /// Appends one event to the WAL (buffered; see
    /// [`DurableStore::commit`]). Fires the armed fault if this is its
    /// append index; a dead store ignores the call.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn append(&mut self, event: &DurableEvent) -> io::Result<()> {
        if self.dead {
            return Ok(());
        }
        let index = self.appended;
        self.appended += 1;
        if let Some(plan) = self.fault {
            if plan.at_append == index {
                self.apply_fault(plan.kind, event)?;
                self.dead = true;
                return Ok(());
            }
        }
        self.wal.append(event)?;
        self.unsynced += 1;
        Ok(())
    }

    /// Marks a group-commit boundary: fsyncs if the policy says so.
    ///
    /// # Errors
    ///
    /// Propagates the underlying sync error.
    pub fn commit(&mut self) -> io::Result<()> {
        if self.dead {
            return Ok(());
        }
        let due = match self.policy {
            FsyncPolicy::Always => self.unsynced > 0,
            FsyncPolicy::EveryN(n) => self.unsynced >= n,
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Unconditionally fsyncs the WAL (shutdown, or a hard barrier).
    ///
    /// # Errors
    ///
    /// Propagates the underlying sync error.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dead {
            return Ok(());
        }
        self.wal.sync()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Atomically installs `snapshot` and truncates the WAL: tmp write,
    /// file fsync, rename, directory fsync, WAL reset.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem errors.
    pub fn install_snapshot(&mut self, snapshot: &StoreSnapshot) -> io::Result<()> {
        if self.dead {
            return Ok(());
        }
        let tmp = self.dir.join(SNAPSHOT_TMP_FILE);
        let dst = self.dir.join(SNAPSHOT_FILE);
        {
            let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
            file.write_all(&snapshot.to_bytes())?;
            file.sync_data()?;
        }
        fs::rename(&tmp, &dst)?;
        File::open(&self.dir)?.sync_all()?;
        self.wal.reset()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Arms a one-shot crash-point fault (replacing any previous plan).
    pub fn set_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Total appends attempted (including the one that fired a fault).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Whether an injected fault has fired, turning the store into a
    /// black hole.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn apply_fault(&mut self, kind: FaultKind, event: &DurableEvent) -> io::Result<()> {
        let mut record = Vec::new();
        encode_record(event, &mut record);
        match kind {
            FaultKind::Crash => Ok(()),
            FaultKind::Torn { keep } => {
                let keep = keep.min(record.len());
                self.wal.append_raw(&record[..keep])?;
                self.wal.sync()
            }
            FaultKind::BitFlip { bit } => {
                let bit = bit % (record.len() * 8);
                record[bit / 8] ^= 1 << (bit % 8);
                self.wal.append_raw(&record)?;
                self.wal.sync()
            }
        }
    }
}
