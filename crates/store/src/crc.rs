//! CRC-32 (IEEE 802.3, the zlib/zip polynomial) with a compile-time
//! lookup table.
//!
//! The WAL checksums every record payload so that a torn write, a
//! bit-flip, or a stray partial append is detected at recovery time and
//! the log is truncated at the last intact record instead of feeding
//! garbage into the replay path. The implementation is the classic
//! reflected table-driven byte-at-a-time loop; the table is built by a
//! `const fn` so the crate needs no build script and no dependency.

/// Reflected polynomial for CRC-32/ISO-HDLC (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xedb8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes` (init `0xffff_ffff`, reflected, final XOR
/// `0xffff_ffff` — identical to zlib's `crc32`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &byte in bytes {
        let index = ((crc ^ u32::from(byte)) & 0xff) as usize;
        crc = (crc >> 8) ^ TABLE[index];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn matches_the_reference_check_value() {
        // The canonical CRC-32/ISO-HDLC check vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn distinguishes_single_bit_flips() {
        let base = crc32(b"hello, wal");
        let mut flipped = *b"hello, wal";
        flipped[3] ^= 0x01;
        assert_ne!(base, crc32(&flipped));
        assert_ne!(crc32(b""), crc32(&[0]));
    }
}
