//! Deterministic replay of recovered state into a fresh engine.
//!
//! Replay order matters and is fixed:
//!
//! 1. **Snapshot batches** — so digest-carrying vertices resolve their
//!    transactions locally instead of emitting fetches,
//! 2. **Snapshot vertices** (genesis excluded; [`Dag`] iteration is
//!    round-major ascending, so causal parents always precede children
//!    and nothing parks in the delivery buffer),
//! 3. **Snapshot leaders** as [`DurableEvent::Commit`] records — waves
//!    whose coin this node had already opened re-commit without the
//!    shares, which the aggregator cannot re-serialize,
//! 4. **WAL tail** in append order — the events the engine acted on
//!    after the snapshot was captured.
//!
//! Replay is *silent*: the engine is driven with durable recording off
//! and the resulting [`EngineOutput`]s are handed to the caller's sink,
//! which typically drops the `Send`/`Broadcast`/timer traffic (peers
//! saw it long ago) and keeps only the `Ordered` deliveries to rebuild
//! the published log. Determinism of the engine guarantees the rebuilt
//! order is a byte-identical prefix of what the process had delivered
//! before the crash — the property `DagAuditor::audit_recovery` and the
//! kill-and-restart suite pin.
//!
//! [`Dag`]: dagrider_core::Dag

use dagrider_core::{DagRiderEngine, DurableEvent, EngineOutput};
use dagrider_rbc::ReliableBroadcast;
use dagrider_types::{Round, Time, Wave};
use rand::rngs::StdRng;

use crate::snapshot::StoreSnapshot;

/// Counts of what a [`replay_into`] call fed to the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Non-genesis vertices replayed from the snapshot DAG.
    pub snapshot_vertices: usize,
    /// Worker batches restored from the snapshot.
    pub snapshot_batches: usize,
    /// Opened coin leaders re-committed from the snapshot.
    pub snapshot_leaders: usize,
    /// WAL tail records replayed.
    pub wal_events: usize,
}

impl ReplayStats {
    /// Total events replayed across all sources.
    #[must_use]
    pub fn total(&self) -> usize {
        self.snapshot_vertices + self.snapshot_batches + self.snapshot_leaders + self.wal_events
    }
}

/// Replays `snapshot` and the WAL `tail` into `engine`, forwarding
/// every engine output to `on_output`.
///
/// The engine must be freshly constructed (same committee, identity,
/// coin key, and config as the pre-crash run) and must **not** have
/// durable recording enabled yet — enable it after replay so the new
/// WAL does not re-record the recovered prefix.
pub fn replay_into<B, F>(
    engine: &mut DagRiderEngine<B>,
    snapshot: Option<&StoreSnapshot>,
    tail: &[DurableEvent],
    now: Time,
    rng: &mut StdRng,
    mut on_output: F,
) -> ReplayStats
where
    B: ReliableBroadcast,
    F: FnMut(EngineOutput),
{
    let mut stats = ReplayStats::default();
    let mut feed = |engine: &mut DagRiderEngine<B>, event: DurableEvent, rng: &mut StdRng| {
        for output in engine.replay_durable(event, now, rng) {
            on_output(output);
        }
    };
    if let Some(snapshot) = snapshot {
        for batch in snapshot.batches() {
            feed(engine, DurableEvent::Batch(batch.clone()), rng);
            stats.snapshot_batches += 1;
        }
        for entry in snapshot.dag().entries() {
            if entry.vertex.round() == Round::GENESIS {
                continue;
            }
            feed(engine, DurableEvent::Vertex(entry.vertex.clone()), rng);
            stats.snapshot_vertices += 1;
        }
        for &(wave, leader) in snapshot.leaders() {
            feed(engine, DurableEvent::Commit { wave: Wave::new(wave), leader }, rng);
            stats.snapshot_leaders += 1;
        }
    }
    for event in tail {
        feed(engine, event.clone(), rng);
        stats.wal_events += 1;
    }
    stats
}
