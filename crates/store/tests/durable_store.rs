//! File-level semantics of [`DurableStore`]: open/append/reopen
//! persistence, WAL tail truncation on open, atomic snapshot install,
//! corrupt-snapshot fallback, and the crash-point fault injector.

use std::fs;
use std::path::PathBuf;

use dagrider_analysis::DagSnapshot;
use dagrider_core::{Dag, DurableEvent};
use dagrider_store::{
    scan_wal, DurableStore, FaultKind, FaultPlan, FsyncPolicy, StoreSnapshot, Wal, WalDefect,
    SNAPSHOT_FILE, WAL_FILE,
};
use dagrider_types::{Batch, Committee, Decode, Encode, ProcessId, Transaction, Wave};

/// A unique, disposable store directory for one test.
fn scratch_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dagrider-durable-store-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Durable events that need no crypto to construct.
fn plain_events(count: usize) -> Vec<DurableEvent> {
    (0..count)
        .map(|i| {
            let pid = ProcessId::new((i % 4) as u32);
            if i % 2 == 0 {
                DurableEvent::Batch(Batch::new(
                    pid,
                    i as u32,
                    vec![Transaction::synthetic(i as u64, 10)],
                ))
            } else {
                DurableEvent::Commit { wave: Wave::new(i as u64), leader: pid }
            }
        })
        .collect()
}

/// An (empty-DAG) snapshot good enough for install/decode tests.
fn empty_snapshot() -> StoreSnapshot {
    let committee = Committee::new(4).expect("valid committee");
    let dag = Dag::new(committee);
    StoreSnapshot::from_parts(
        DagSnapshot::capture(&dag),
        vec![(1, ProcessId::new(2))],
        vec![Batch::new(ProcessId::new(0), 7, vec![Transaction::synthetic(3, 8)])],
    )
}

#[test]
fn appended_events_survive_reopen() {
    let dir = scratch_dir("reopen");
    let events = plain_events(6);
    {
        let (mut store, recovered) =
            DurableStore::open(&dir, FsyncPolicy::Always).expect("open fresh");
        assert!(recovered.is_empty(), "fresh directory recovered state");
        for event in &events {
            store.append(event).expect("append");
        }
        store.commit().expect("commit");
    }
    let (_, recovered) = DurableStore::open(&dir, FsyncPolicy::Always).expect("reopen");
    assert_eq!(recovered.tail, events);
    assert!(recovered.snapshot.is_none());
    assert!(recovered.wal_defect.is_none());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unsynced_appends_still_land_without_a_process_crash() {
    // FsyncPolicy::Never defers fsync, not the write itself: absent a
    // power failure the bytes are in the file when the process exits.
    let dir = scratch_dir("never-sync");
    let events = plain_events(3);
    {
        let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Never).expect("open");
        for event in &events {
            store.append(event).expect("append");
        }
        store.commit().expect("commit is a no-op under Never");
    }
    let (_, recovered) = DurableStore::open(&dir, FsyncPolicy::Never).expect("reopen");
    assert_eq!(recovered.tail, events);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wal_open_truncates_a_torn_tail() {
    let dir = scratch_dir("torn-tail");
    let events = plain_events(4);
    {
        let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Always).expect("open");
        for event in &events {
            store.append(event).expect("append");
        }
        store.sync().expect("sync");
    }
    // Simulate a crash mid-append: garbage half-record at the tail.
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = fs::read(&wal_path).expect("read wal");
    let intact_len = bytes.len();
    bytes.extend_from_slice(&[0x17, 0x00, 0x00]);
    fs::write(&wal_path, &bytes).expect("write torn wal");

    let (wal, scan) = Wal::open(&wal_path).expect("open torn wal");
    assert_eq!(scan.events, events);
    assert!(matches!(scan.defect, Some(WalDefect::TornHeader { .. })));
    assert_eq!(wal.len() as usize, intact_len, "torn bytes must be truncated away");
    drop(wal);
    assert_eq!(
        fs::metadata(&wal_path).expect("stat wal").len() as usize,
        intact_len,
        "truncation must be durable on disk"
    );
    // A second open of the repaired file is clean.
    let (_, rescan) = Wal::open(&wal_path).expect("reopen repaired wal");
    assert_eq!(rescan.events, events);
    assert!(rescan.defect.is_none());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn install_snapshot_truncates_the_wal() {
    let dir = scratch_dir("install");
    let before = plain_events(5);
    let after = plain_events(8)[5..].to_vec();
    let snapshot = empty_snapshot();
    {
        let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::EveryN(2)).expect("open");
        for event in &before {
            store.append(event).expect("append pre-snapshot");
        }
        store.install_snapshot(&snapshot).expect("install");
        for event in &after {
            store.append(event).expect("append post-snapshot");
        }
        store.sync().expect("sync");
    }
    let (_, recovered) = DurableStore::open(&dir, FsyncPolicy::EveryN(2)).expect("reopen");
    let restored = recovered.snapshot.expect("snapshot must be recovered");
    assert_eq!(restored.to_bytes(), snapshot.to_bytes(), "snapshot must round-trip bytewise");
    assert_eq!(recovered.tail, after, "WAL must hold only post-snapshot events");
    assert!(recovered.wal_defect.is_none());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_snapshot_is_discarded_not_fatal() {
    let dir = scratch_dir("bad-snap");
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join(SNAPSHOT_FILE), b"definitely not a snapshot").expect("write junk");
    let (_, recovered) = DurableStore::open(&dir, FsyncPolicy::Always).expect("open");
    assert!(recovered.snapshot.is_none());
    assert!(recovered.snapshot_defect.is_some(), "the defect must be reported");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn store_snapshot_codec_rejects_bad_magic() {
    let snapshot = empty_snapshot();
    let bytes = snapshot.to_bytes();
    let decoded = StoreSnapshot::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(decoded.to_bytes(), bytes);
    let mut bad = bytes;
    bad[0] ^= 0xFF;
    assert!(StoreSnapshot::from_bytes(&bad).is_err(), "bad magic must not decode");
}

#[test]
fn crash_fault_loses_exactly_the_suffix() {
    let events = plain_events(6);
    for crash_at in 0..events.len() as u64 {
        let dir = scratch_dir(&format!("crash-{crash_at}"));
        {
            let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Always).expect("open");
            store.set_fault(FaultPlan { at_append: crash_at, kind: FaultKind::Crash });
            for event in &events {
                store.append(event).expect("append");
                store.commit().expect("commit");
            }
            assert!(store.is_dead(), "fault must have fired");
        }
        let (_, recovered) = DurableStore::open(&dir, FsyncPolicy::Always).expect("reopen");
        assert_eq!(
            recovered.tail,
            events[..crash_at as usize],
            "crash at append {crash_at} must keep exactly the prefix"
        );
        assert!(recovered.wal_defect.is_none(), "a clean crash leaves no torn bytes");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_and_bitflip_faults_are_classified_and_truncated() {
    let events = plain_events(5);
    let cases: [(FaultKind, &str); 3] = [
        (FaultKind::Torn { keep: 3 }, "torn3"),
        (FaultKind::Torn { keep: 9 }, "torn9"),
        // Bit 32 is the first bit of the stored checksum field.
        (FaultKind::BitFlip { bit: 32 }, "bitflip"),
    ];
    for (kind, name) in cases {
        let dir = scratch_dir(&format!("fault-{name}"));
        {
            let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Always).expect("open");
            store.set_fault(FaultPlan { at_append: 3, kind });
            for event in &events {
                store.append(event).expect("append");
            }
        }
        // The raw file shows the damage...
        let scan = scan_wal(&fs::read(dir.join(WAL_FILE)).expect("read wal"));
        assert_eq!(scan.events, events[..3], "{name}: prefix must survive");
        let defect = scan.defect.expect("damaged tail must scan a defect");
        match kind {
            FaultKind::Torn { .. } => assert!(defect.is_torn_tail(), "{name}: got {defect}"),
            FaultKind::BitFlip { .. } => assert!(
                matches!(defect, WalDefect::ChecksumMismatch { .. }),
                "{name}: got {defect}"
            ),
            FaultKind::Crash => unreachable!(),
        }
        // ...and a reopen repairs it back to the intact prefix.
        let (_, recovered) = DurableStore::open(&dir, FsyncPolicy::Always).expect("reopen");
        assert_eq!(recovered.tail, events[..3]);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_dead_store_ignores_every_operation() {
    let dir = scratch_dir("dead");
    let events = plain_events(4);
    let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Always).expect("open");
    store.set_fault(FaultPlan { at_append: 1, kind: FaultKind::Crash });
    for event in &events {
        store.append(event).expect("append");
    }
    assert!(store.is_dead());
    assert_eq!(store.appended(), 2, "counting stops with the append that fired the fault");
    store.commit().expect("commit on dead store is a no-op");
    store.sync().expect("sync on dead store is a no-op");
    store.install_snapshot(&empty_snapshot()).expect("install on dead store is a no-op");
    drop(store);
    let (_, recovered) = DurableStore::open(&dir, FsyncPolicy::Always).expect("reopen");
    assert_eq!(recovered.tail, events[..1], "nothing after the fault may land");
    assert!(recovered.snapshot.is_none(), "dead install_snapshot must not write");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_stale_snapshot_tmp_file_is_removed_at_open() {
    let dir = scratch_dir("stale-tmp");
    fs::create_dir_all(&dir).expect("mkdir");
    let tmp = dir.join("dag.snap.tmp");
    fs::write(&tmp, b"half-written snapshot").expect("write tmp");
    let (_, recovered) = DurableStore::open(&dir, FsyncPolicy::Always).expect("open");
    assert!(recovered.is_empty());
    assert!(!tmp.exists(), "crash-mid-install leftovers must be cleaned up");
    let _ = fs::remove_dir_all(&dir);
}
