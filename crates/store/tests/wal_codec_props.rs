//! Property tests for the WAL record framing.
//!
//! The write-ahead log is the one place where bytes cross a crash
//! boundary, so its decoder carries the recovery contract: an intact
//! log round-trips exactly, any truncation recovers exactly the intact
//! record prefix (classified as a benign torn tail), and corruption —
//! bit flips, inflated length prefixes, well-checksummed garbage — is
//! detected and truncates the log instead of misparsing it.

use dagrider_core::DurableEvent;
use dagrider_crypto::deal_coin_keys;
use dagrider_store::{
    crc32, encode_record, scan_wal, WalDefect, MAX_RECORD_LEN, RECORD_HEADER_LEN,
};
use dagrider_types::{
    Batch, Block, Committee, Encode, ProcessId, Round, SeqNum, Transaction, VertexBuilder, Wave,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic mixed-kind event sequence: every variant of
/// [`DurableEvent`] appears, including real threshold-coin shares.
fn sample_events(seed: u64, count: usize) -> Vec<DurableEvent> {
    let committee = Committee::new(4).expect("4 is a valid committee size");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys = deal_coin_keys(&committee, &mut rng);
    let keys = keys.remove((seed % 4) as usize);
    (0..count)
        .map(|i| {
            let pid = ProcessId::new(((seed as usize + i) % 4) as u32);
            match seed.wrapping_add(i as u64) % 4 {
                0 => {
                    let block = Block::new(
                        pid,
                        SeqNum::new(i as u64),
                        vec![Transaction::synthetic(seed ^ i as u64, 12)],
                    );
                    DurableEvent::Vertex(
                        VertexBuilder::new(pid, Round::new(i as u64 + 1), block).build_unchecked(),
                    )
                }
                1 => DurableEvent::CoinShare(keys.share(i as u64 + 1, &mut rng)),
                2 => DurableEvent::Batch(Batch::new(
                    pid,
                    i as u32,
                    vec![Transaction::synthetic(seed.wrapping_mul(31) ^ i as u64, 16)],
                )),
                _ => DurableEvent::Commit { wave: Wave::new(i as u64 + 1), leader: pid },
            }
        })
        .collect()
}

/// The framed byte image of a record sequence.
fn image(events: &[DurableEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    for event in events {
        encode_record(event, &mut buf);
    }
    buf
}

/// Record boundaries: `boundaries[i]` is the byte offset where record
/// `i` starts; the final entry is the image length.
fn boundaries(events: &[DurableEvent]) -> Vec<usize> {
    let mut at = 0;
    let mut out = vec![0];
    for event in events {
        at += RECORD_HEADER_LEN + event.encoded_len();
        out.push(at);
    }
    out
}

/// Frames an arbitrary payload with a *correct* checksum — the
/// well-checksummed-garbage case the codec layer must still reject.
fn frame_raw(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn intact_logs_roundtrip(seed in any::<u64>(), count in 0usize..8) {
        let events = sample_events(seed, count);
        let bytes = image(&events);
        let scan = scan_wal(&bytes);
        prop_assert!(scan.defect.is_none(), "clean log scanned a defect: {:?}", scan.defect);
        prop_assert_eq!(scan.valid_len as usize, bytes.len());
        prop_assert_eq!(&scan.events, &events);
    }

    #[test]
    fn truncation_recovers_exactly_the_intact_prefix(
        seed in any::<u64>(),
        count in 1usize..7,
        cut_pick in any::<u64>(),
    ) {
        let events = sample_events(seed, count);
        let bytes = image(&events);
        let bounds = boundaries(&events);
        let cut = (cut_pick as usize) % (bytes.len() + 1);
        let scan = scan_wal(&bytes[..cut]);
        // The valid prefix is the last record boundary at or below the
        // cut, and exactly the records before it decode.
        let intact = bounds.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(scan.valid_len as usize, bounds[intact]);
        prop_assert_eq!(&scan.events[..], &events[..intact]);
        if cut == bounds[intact] {
            prop_assert!(scan.defect.is_none());
        } else {
            let defect = scan.defect.expect("mid-record cut must scan a defect");
            prop_assert!(defect.is_torn_tail(), "expected torn tail, got {defect}");
            prop_assert_eq!(defect.offset() as usize, bounds[intact]);
        }
    }

    #[test]
    fn payload_bit_flips_are_detected(
        seed in any::<u64>(),
        count in 1usize..6,
        victim_pick in any::<u64>(),
        bit_pick in any::<u64>(),
    ) {
        let events = sample_events(seed, count);
        let mut bytes = image(&events);
        let bounds = boundaries(&events);
        let victim = (victim_pick as usize) % count;
        let payload_at = bounds[victim] + RECORD_HEADER_LEN;
        let payload_len = bounds[victim + 1] - payload_at;
        let bit = (bit_pick as usize) % (payload_len * 8);
        bytes[payload_at + bit / 8] ^= 1 << (bit % 8);
        let scan = scan_wal(&bytes);
        prop_assert_eq!(&scan.events[..], &events[..victim]);
        prop_assert_eq!(scan.valid_len as usize, bounds[victim]);
        prop_assert_eq!(
            scan.defect,
            Some(WalDefect::ChecksumMismatch { offset: bounds[victim] as u64 })
        );
    }

    #[test]
    fn inflated_length_prefixes_are_rejected(
        seed in any::<u64>(),
        inflate in 1u32..64,
    ) {
        // A single record whose length prefix promises more bytes than
        // the file holds: classified as a torn record, never over-read.
        let events = sample_events(seed, 1);
        let mut bytes = image(&events);
        let true_len = (bytes.len() - RECORD_HEADER_LEN) as u32;
        bytes[..4].copy_from_slice(&(true_len + inflate).to_le_bytes());
        let scan = scan_wal(&bytes);
        prop_assert!(scan.events.is_empty());
        prop_assert_eq!(scan.valid_len, 0);
        prop_assert_eq!(
            scan.defect,
            Some(WalDefect::TornRecord {
                offset: 0,
                expected: (true_len + inflate) as usize,
                found: true_len as usize,
            })
        );
    }

    #[test]
    fn absurd_length_prefixes_overflow(
        seed in any::<u64>(),
        beyond in 1u64..1024,
    ) {
        let events = sample_events(seed, 1);
        let mut bytes = image(&events);
        let absurd = (MAX_RECORD_LEN as u64 + beyond) as u32;
        bytes[..4].copy_from_slice(&absurd.to_le_bytes());
        let scan = scan_wal(&bytes);
        prop_assert!(scan.events.is_empty());
        prop_assert_eq!(
            scan.defect,
            Some(WalDefect::LengthOverflow { offset: 0, length: u64::from(absurd) })
        );
    }

    #[test]
    fn well_checksummed_garbage_is_malformed(
        seed in any::<u64>(),
        count in 0usize..4,
        tag in 5u8..=255,
        junk in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        // A record whose checksum is *correct* but whose payload is not
        // a DurableEvent (unknown tag): the codec layer must reject it,
        // and the scan truncates there.
        let events = sample_events(seed, count);
        let mut bytes = image(&events);
        let mut payload = vec![tag];
        payload.extend_from_slice(&junk);
        bytes.extend_from_slice(&frame_raw(&payload));
        let end = boundaries(&events)[count];
        let scan = scan_wal(&bytes);
        prop_assert_eq!(&scan.events[..], &events[..]);
        prop_assert_eq!(scan.valid_len as usize, end);
        prop_assert!(
            matches!(scan.defect, Some(WalDefect::Malformed { offset, .. }) if offset as usize == end),
            "expected Malformed at {end}, got {:?}",
            scan.defect
        );
    }

    #[test]
    fn trailing_bytes_inside_a_record_are_malformed(
        seed in any::<u64>(),
        extra in 1usize..8,
    ) {
        // A valid event payload padded with junk, reframed with a
        // correct checksum: strict decoding must refuse the padding.
        let events = sample_events(seed, 1);
        let mut payload = events[0].to_bytes();
        payload.extend(std::iter::repeat_n(0xAA, extra));
        let scan = scan_wal(&frame_raw(&payload));
        prop_assert!(scan.events.is_empty());
        prop_assert!(matches!(scan.defect, Some(WalDefect::Malformed { offset: 0, .. })));
    }
}
