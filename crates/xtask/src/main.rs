//! `cargo xtask` — repository automation.
//!
//! The only subcommand so far is `lint`: source-level rules that clippy
//! has no lint for, enforced over the workspace's own crates:
//!
//! 1. every crate root carries `#![forbid(unsafe_code)]` and opens with
//!    crate-level docs (`//!`);
//! 2. protocol-critical code (`crates/core`, `crates/rbc`) and the TCP
//!    runtime (`crates/net`) never call `.unwrap()` outside tests, and
//!    every `.expect(...)` states the invariant it relies on as a
//!    non-empty string literal;
//! 3. paper citations in `crates/core` use the spelled-out convention
//!    (`Algorithm 2`, `§4`, `Lemma 1`), never `Alg.`/`Sec.` abbreviations
//!    that make cross-referencing the paper ambiguous;
//! 4. the sans-I/O engine stays sans-I/O: `crates/core` must not depend
//!    on the simulator (`dagrider-simnet`), in its manifest or its
//!    source — drivers adapt to the engine, never the reverse;
//! 5. the pre-verified fast path stays inside its trust boundary:
//!    `EngineInput::PreVerified` / `VerifiedInput` assert "digest
//!    computed, proof checked", so only the engine (`crates/core`) and
//!    the drivers that actually verify (`crates/net`,
//!    `crates/simactor`) may name them in code.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

/// One finding, pointing at a file and (1-based) line.
struct Finding {
    path: PathBuf,
    line: usize,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.path.display(), self.line, self.message)
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut findings = Vec::new();
    let mut files_checked = 0usize;

    for crate_root in crate_roots(&root) {
        files_checked += 1;
        check_crate_root(&crate_root, &mut findings);
    }
    for dir in ["crates/core/src", "crates/rbc/src", "crates/net/src"] {
        for file in rust_files(&root.join(dir)) {
            files_checked += 1;
            check_panic_discipline(&file, &mut findings);
        }
    }
    for file in rust_files(&root.join("crates/core/src")) {
        check_citation_style(&file, &mut findings);
    }
    files_checked += 1;
    check_engine_isolation(&root, &mut findings);
    files_checked += 1;
    check_preverified_boundary(&root, &mut findings);

    for finding in &findings {
        // Report paths relative to the repo root so they are clickable
        // from any working directory inside it.
        let relative = finding.path.strip_prefix(&root).unwrap_or(&finding.path);
        println!("{}:{}: {}", relative.display(), finding.line, finding.message);
    }
    if findings.is_empty() {
        println!("xtask lint: {files_checked} files checked, clean");
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The repository root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Root source file (`src/lib.rs`, else `src/main.rs`) of every workspace
/// member: the root package, `crates/*`, and `vendor/*`.
fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("src/lib.rs")];
    for group in ["crates", "vendor"] {
        let Ok(entries) = std::fs::read_dir(root.join(group)) else { continue };
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        for dir in dirs {
            let lib = dir.join("src/lib.rs");
            let main = dir.join("src/main.rs");
            if lib.is_file() {
                out.push(lib);
            } else if main.is_file() {
                out.push(main);
            }
        }
    }
    out
}

/// Every `.rs` file under `dir`, recursively, sorted for stable output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&current) else { continue };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Rule 1: `#![forbid(unsafe_code)]` + leading `//!` docs in crate roots.
fn check_crate_root(path: &Path, findings: &mut Vec<Finding>) {
    let source = read(path);
    if !source.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            path: path.to_path_buf(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
        });
    }
    let opens_with_docs = source
        .lines()
        .find(|l| !l.trim().is_empty())
        .is_some_and(|l| l.trim_start().starts_with("//!"));
    if !opens_with_docs {
        findings.push(Finding {
            path: path.to_path_buf(),
            line: 1,
            message: "crate root must open with crate-level docs (`//!`)".into(),
        });
    }
}

/// Rule 2: no `.unwrap()`, and only message-bearing `.expect("...")`, in
/// non-test code of the protocol-critical crates.
fn check_panic_discipline(path: &Path, findings: &mut Vec<Finding>) {
    for (number, line) in code_lines(&read(path)) {
        if line.contains(".unwrap()") {
            findings.push(Finding {
                path: path.to_path_buf(),
                line: number,
                message: "`.unwrap()` in protocol-critical code; return a typed error \
                          or use `.expect(\"<invariant>\")`"
                    .into(),
            });
        }
        for (at, _) in line.match_indices(".expect(") {
            let argument = line[at + ".expect(".len()..].trim_start();
            if !argument.starts_with('"') || argument.starts_with("\"\"") {
                findings.push(Finding {
                    path: path.to_path_buf(),
                    line: number,
                    message: "`.expect(...)` must state its invariant as a non-empty \
                              string literal"
                        .into(),
                });
            }
        }
    }
}

/// Rule 3: spell out paper citations (`Algorithm`, `§`) — abbreviations
/// don't match the paper's own headings and defeat grep.
fn check_citation_style(path: &Path, findings: &mut Vec<Finding>) {
    let source = read(path);
    for (index, line) in source.lines().enumerate() {
        let Some(at) = line.find("//") else { continue };
        let comment = &line[at..];
        for abbreviation in ["Alg.", "Sec."] {
            if comment.contains(abbreviation) {
                findings.push(Finding {
                    path: path.to_path_buf(),
                    line: index + 1,
                    message: format!(
                        "comment cites the paper as `{abbreviation}`; spell it out \
                         (`Algorithm N` / `§N`) to match the paper's headings"
                    ),
                });
            }
        }
    }
}

/// Rule 4: the engine crate must not grow a simulator dependency. The
/// manifest check catches the dependency edge itself; the source check
/// catches `dagrider_simnet` paths that would only compile if someone
/// also re-added the edge (comments and strings are exempt — prose may
/// mention the simulator).
fn check_engine_isolation(root: &Path, findings: &mut Vec<Finding>) {
    let manifest = root.join("crates/core/Cargo.toml");
    for (index, line) in read(&manifest).lines().enumerate() {
        if line.contains("dagrider-simnet") {
            findings.push(Finding {
                path: manifest.clone(),
                line: index + 1,
                message: "the sans-I/O core must not depend on the simulator \
                          (`dagrider-simnet`); put driver glue in `dagrider-simactor`"
                    .into(),
            });
        }
    }
    for file in rust_files(&root.join("crates/core/src")) {
        for (number, line) in code_lines(&read(&file)) {
            if line.contains("dagrider_simnet") {
                findings.push(Finding {
                    path: file.clone(),
                    line: number,
                    message: "`dagrider_simnet` referenced from the sans-I/O core; \
                              the engine must stay driver-agnostic"
                        .into(),
                });
            }
        }
    }
}

/// Rule 5: `EngineInput::PreVerified` carries the claim "this input was
/// already verified" and the engine trusts it without re-checking. Only
/// the engine itself and the drivers that actually perform verification
/// (the TCP runtime's worker pool, the deterministic simulator harness)
/// may name it — any other crate constructing one would inject
/// unverified input past the digest and proof checks. Comments and
/// strings are exempt (prose may explain the mechanism).
fn check_preverified_boundary(root: &Path, findings: &mut Vec<Finding>) {
    let allowed = ["crates/core", "crates/net", "crates/simactor"];
    let mut dirs: Vec<PathBuf> = vec![root.join("src"), root.join("tests"), root.join("examples")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        dirs.extend(
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| !allowed.iter().any(|a| p.ends_with(a))),
        );
    }
    dirs.sort();
    for dir in dirs {
        for file in rust_files(&dir) {
            for (number, line) in code_lines(&read(&file)) {
                if line.contains("PreVerified") || line.contains("VerifiedInput") {
                    findings.push(Finding {
                        path: file.clone(),
                        line: number,
                        message: "pre-verified engine inputs may only be constructed by \
                                  verifying drivers (`crates/net`, `crates/simactor`); \
                                  use `EngineInput::Message` here"
                            .into(),
                    });
                }
            }
        }
    }
}

/// Yields `(line_number, code)` for the non-test, non-comment portion of
/// a source file: `#[cfg(test)]` items are dropped wholesale, line/block
/// comments and string-literal contents are blanked so panics named in
/// prose or messages don't trip the rules.
fn code_lines(source: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    // Once a `#[cfg(test)]` attribute is seen, the next item's braces are
    // tracked and everything until they balance is skipped.
    let mut pending_test_attr = false;
    let mut test_depth = 0usize;
    for (index, raw) in source.lines().enumerate() {
        let code = strip_line(raw, &mut in_block_comment);
        let trimmed = raw.trim_start();
        if test_depth == 0 && trimmed.starts_with("#[cfg(test)]") {
            pending_test_attr = true;
            continue;
        }
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        if pending_test_attr {
            if opens > 0 {
                pending_test_attr = false;
                test_depth = opens.saturating_sub(closes).max(1);
            } else if trimmed.starts_with("#[") || trimmed.is_empty() {
                // More attributes (or blanks) before the item itself.
            } else if code.contains(';') {
                pending_test_attr = false; // braceless item, e.g. `use`
            }
            continue;
        }
        if test_depth > 0 {
            test_depth = (test_depth + opens).saturating_sub(closes);
            continue;
        }
        out.push((index + 1, code));
    }
    out
}

/// Blanks comments and string/char literal contents from one line,
/// carrying block-comment state across lines. String delimiters are kept
/// and non-empty contents collapse to a single `s`, so rules can still
/// distinguish `.expect("")` from `.expect("msg")`. Escapes inside
/// strings are honored; multi-line and raw strings are treated
/// conservatively (the remainder of the line is dropped).
fn strip_line(line: &str, in_block_comment: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut in_string = false;
    let mut string_had_content = false;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i..].starts_with(b"*/") {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_string {
            match bytes[i] {
                b'\\' => {
                    string_had_content = true;
                    i += 2;
                }
                b'"' => {
                    if string_had_content {
                        out.push('s');
                    }
                    out.push('"');
                    in_string = false;
                    i += 1;
                }
                _ => {
                    string_had_content = true;
                    i += 1;
                }
            }
            continue;
        }
        if bytes[i..].starts_with(b"//") {
            break; // line comment: rest of line is prose
        }
        if bytes[i..].starts_with(b"/*") {
            *in_block_comment = true;
            i += 2;
            continue;
        }
        match bytes[i] {
            b'"' => {
                out.push('"');
                in_string = true;
                string_had_content = false;
                i += 1;
            }
            // Char literal like '{' — blank it; lifetimes ('a) have no
            // closing quote within two chars and fall through harmlessly.
            b'\'' if i + 2 < bytes.len() && bytes[i + 2] == b'\'' => i += 3,
            byte => {
                out.push(byte as char);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_lines_skips_test_modules() {
        let source = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let lines = code_lines(source);
        let joined: String = lines.iter().map(|(_, l)| l.as_str()).collect();
        assert!(joined.contains("fn a"));
        assert!(joined.contains("fn c"));
        assert!(!joined.contains("fn b"));
    }

    #[test]
    fn strip_line_blanks_strings_and_comments() {
        let mut block = false;
        assert_eq!(strip_line("let x = \"{\"; // }", &mut block), "let x = \"s\"; ");
        assert!(!block);
        assert_eq!(strip_line("a /* open", &mut block), "a ");
        assert!(block);
        assert_eq!(strip_line("still */ b", &mut block), " b");
        assert!(!block);
    }

    #[test]
    fn preverified_rule_flags_code_but_not_prose() {
        let root = std::env::temp_dir().join("xtask-preverified-test");
        let src = root.join("crates/foo/src");
        std::fs::create_dir_all(&src).expect("temp dir is writable");
        std::fs::write(
            src.join("lib.rs"),
            "// EngineInput::PreVerified is fine in prose\n\
             fn f() { g(EngineInput::PreVerified(v)); }\n",
        )
        .expect("temp file is writable");
        let mut findings = Vec::new();
        check_preverified_boundary(&root, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn expect_rule_matches_only_non_literal_messages() {
        let mut findings = Vec::new();
        let dir = std::env::temp_dir().join("xtask-lint-test");
        std::fs::create_dir_all(&dir).expect("temp dir is writable");
        let file = dir.join("sample.rs");
        std::fs::write(
            &file,
            "fn f() { a.expect(\"invariant holds\"); b.expect(msg); c.unwrap(); }\n",
        )
        .expect("temp file is writable");
        check_panic_discipline(&file, &mut findings);
        assert_eq!(
            findings.len(),
            2,
            "{:?}",
            findings.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        std::fs::remove_file(&file).ok();
    }
}
