//! `cargo xtask` — repository automation.
//!
//! The only subcommand so far is `lint`: a rule engine of source-level
//! checks clippy has no lint for, enforced over the workspace's own
//! crates. `lint --list` names every rule with a one-line summary;
//! `lint --rule NAME` runs one in isolation. The rules fall into two
//! families:
//!
//! - **repository conventions** — crate roots carry
//!   `#![forbid(unsafe_code)]` and docs, protocol-critical crates avoid
//!   `.unwrap()`, paper citations are spelled out, the sans-I/O engine
//!   keeps its isolation, and pre-verified inputs stay inside their
//!   trust boundary;
//! - **concurrency discipline** — `crates/net` routes all
//!   synchronization through its `crate::sync` shim layer (so the
//!   `dagrider-check` model checker can interpose), the cross-file
//!   lock-acquisition graph stays acyclic, and the consensus event loop
//!   never blocks indefinitely.
//!
//! See DESIGN.md, "Concurrency discipline", for how these static passes
//! divide the work with the dynamic model checker.

mod engine;
mod rules;
mod source;

use std::process::ExitCode;

use engine::Rule;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask lint [--rule NAME] [--list]");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let rules = rules::registry();
    let mut selected: Vec<&Rule> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for rule in &rules {
                    println!("{:22} {}", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--rule" => {
                let Some(name) = iter.next() else {
                    eprintln!("--rule needs a rule name (see `lint --list`)");
                    return ExitCode::from(2);
                };
                match rules.iter().find(|r| r.name == *name) {
                    Some(rule) => selected.push(rule),
                    None => {
                        eprintln!("unknown rule `{name}` (see `lint --list`)");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument `{other}`; usage: lint [--rule NAME] [--list]");
                return ExitCode::from(2);
            }
        }
    }
    if selected.is_empty() {
        selected = rules.iter().collect();
    }

    let root = source::workspace_root();
    let findings = engine::run_rules(&root, &selected);
    for finding in &findings {
        // Report paths relative to the repo root so they are clickable
        // from any working directory inside it.
        let relative = finding.path.strip_prefix(&root).unwrap_or(&finding.path);
        println!("{}:{}: {}", relative.display(), finding.line, finding.message);
    }
    if findings.is_empty() {
        println!("xtask lint: {} rule(s) run, clean", selected.len());
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
