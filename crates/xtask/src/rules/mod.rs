//! The lint rules. Each submodule — or function here — implements one
//! named pass; [`registry`] is the single list the CLI consumes.

pub mod lock_order;

use std::path::{Path, PathBuf};

use crate::engine::{Finding, Rule};
use crate::source::{code_lines, crate_roots, read, rust_files};

/// Every rule, in the order they run under plain `cargo xtask lint`.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            name: "crate-root",
            summary: "crate roots carry #![forbid(unsafe_code)] and open with //! docs",
            run: check_crate_roots,
        },
        Rule {
            name: "panic-discipline",
            summary: "no .unwrap() and only message-bearing .expect() in protocol-critical crates",
            run: check_panic_discipline_tree,
        },
        Rule {
            name: "citation-style",
            summary: "paper citations in crates/core are spelled out (Algorithm N, §N)",
            run: check_citation_style_tree,
        },
        Rule {
            name: "engine-isolation",
            summary: "the sans-I/O core must not depend on the simulator",
            run: check_engine_isolation,
        },
        Rule {
            name: "preverified-boundary",
            summary: "only verifying drivers may construct pre-verified engine inputs",
            run: check_preverified_boundary,
        },
        Rule {
            name: "sync-discipline",
            summary: "crates/net uses the crate::sync shims, never std::sync/std::thread directly",
            run: check_sync_discipline,
        },
        Rule {
            name: "lock-order",
            summary: "the cross-file lock-acquisition graph of crates/net stays acyclic",
            run: lock_order::check,
        },
        Rule {
            name: "consensus-blocking",
            summary: "no blocking calls inside the consensus-thread or reactor event loops",
            run: check_consensus_blocking,
        },
    ]
}

/// Rule `crate-root`: `#![forbid(unsafe_code)]` + leading `//!` docs in
/// crate roots.
fn check_crate_roots(root: &Path, findings: &mut Vec<Finding>) {
    for path in crate_roots(root) {
        check_crate_root(&path, findings);
    }
}

fn check_crate_root(path: &Path, findings: &mut Vec<Finding>) {
    let source = read(path);
    if !source.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            path: path.to_path_buf(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
        });
    }
    let opens_with_docs = source
        .lines()
        .find(|l| !l.trim().is_empty())
        .is_some_and(|l| l.trim_start().starts_with("//!"));
    if !opens_with_docs {
        findings.push(Finding {
            path: path.to_path_buf(),
            line: 1,
            message: "crate root must open with crate-level docs (`//!`)".into(),
        });
    }
}

/// Rule `panic-discipline`: no `.unwrap()`, and only message-bearing
/// `.expect("...")`, in non-test code of the protocol-critical crates.
fn check_panic_discipline_tree(root: &Path, findings: &mut Vec<Finding>) {
    for dir in [
        "crates/core/src",
        "crates/rbc/src",
        "crates/net/src",
        "crates/store/src",
        "crates/check/src",
    ] {
        for file in rust_files(&root.join(dir)) {
            check_panic_discipline(&file, findings);
        }
    }
}

fn check_panic_discipline(path: &Path, findings: &mut Vec<Finding>) {
    for (number, line) in code_lines(&read(path)) {
        if line.contains(".unwrap()") {
            findings.push(Finding {
                path: path.to_path_buf(),
                line: number,
                message: "`.unwrap()` in protocol-critical code; return a typed error \
                          or use `.expect(\"<invariant>\")`"
                    .into(),
            });
        }
        for (at, _) in line.match_indices(".expect(") {
            let argument = line[at + ".expect(".len()..].trim_start();
            if !argument.starts_with('"') || argument.starts_with("\"\"") {
                findings.push(Finding {
                    path: path.to_path_buf(),
                    line: number,
                    message: "`.expect(...)` must state its invariant as a non-empty \
                              string literal"
                        .into(),
                });
            }
        }
    }
}

/// Rule `citation-style`: spell out paper citations (`Algorithm`, `§`) —
/// abbreviations don't match the paper's own headings and defeat grep.
fn check_citation_style_tree(root: &Path, findings: &mut Vec<Finding>) {
    for file in rust_files(&root.join("crates/core/src")) {
        check_citation_style(&file, findings);
    }
}

fn check_citation_style(path: &Path, findings: &mut Vec<Finding>) {
    let source = read(path);
    for (index, line) in source.lines().enumerate() {
        let Some(at) = line.find("//") else { continue };
        let comment = &line[at..];
        for abbreviation in ["Alg.", "Sec."] {
            if comment.contains(abbreviation) {
                findings.push(Finding {
                    path: path.to_path_buf(),
                    line: index + 1,
                    message: format!(
                        "comment cites the paper as `{abbreviation}`; spell it out \
                         (`Algorithm N` / `§N`) to match the paper's headings"
                    ),
                });
            }
        }
    }
}

/// Rule `engine-isolation`: the engine crate must not grow a simulator
/// dependency. The manifest check catches the dependency edge itself;
/// the source check catches `dagrider_simnet` paths that would only
/// compile if someone also re-added the edge (comments and strings are
/// exempt — prose may mention the simulator).
fn check_engine_isolation(root: &Path, findings: &mut Vec<Finding>) {
    let manifest = root.join("crates/core/Cargo.toml");
    for (index, line) in read(&manifest).lines().enumerate() {
        if line.contains("dagrider-simnet") {
            findings.push(Finding {
                path: manifest.clone(),
                line: index + 1,
                message: "the sans-I/O core must not depend on the simulator \
                          (`dagrider-simnet`); put driver glue in `dagrider-simactor`"
                    .into(),
            });
        }
    }
    for file in rust_files(&root.join("crates/core/src")) {
        for (number, line) in code_lines(&read(&file)) {
            if line.contains("dagrider_simnet") {
                findings.push(Finding {
                    path: file.clone(),
                    line: number,
                    message: "`dagrider_simnet` referenced from the sans-I/O core; \
                              the engine must stay driver-agnostic"
                        .into(),
                });
            }
        }
    }
}

/// Rule `preverified-boundary`: `EngineInput::PreVerified` carries the
/// claim "this input was already verified" and the engine trusts it
/// without re-checking. Only the engine itself and the drivers that
/// actually perform verification (the TCP runtime's worker pool, the
/// deterministic simulator harness) may name it — any other crate
/// constructing one would inject unverified input past the digest and
/// proof checks. Comments and strings are exempt (prose may explain the
/// mechanism).
fn check_preverified_boundary(root: &Path, findings: &mut Vec<Finding>) {
    let allowed = ["crates/core", "crates/net", "crates/simactor"];
    let mut dirs: Vec<PathBuf> = vec![root.join("src"), root.join("tests"), root.join("examples")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        dirs.extend(
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| !allowed.iter().any(|a| p.ends_with(a))),
        );
    }
    dirs.sort();
    for dir in dirs {
        for file in rust_files(&dir) {
            for (number, line) in code_lines(&read(&file)) {
                if line.contains("PreVerified") || line.contains("VerifiedInput") {
                    findings.push(Finding {
                        path: file.clone(),
                        line: number,
                        message: "pre-verified engine inputs may only be constructed by \
                                  verifying drivers (`crates/net`, `crates/simactor`); \
                                  use `EngineInput::Message` here"
                            .into(),
                    });
                }
            }
        }
    }
}

/// Rule `sync-discipline`: everything in `crates/net` goes through the
/// `crate::sync` shim layer so the model checker can interpose on every
/// synchronization operation. A direct `std::sync`/`std::thread` use is
/// invisible to `dagrider-check` — a schedule the explorer can never
/// serialize — so only the shim module itself may name them. Test code
/// is exempt (tests run under the real scheduler anyway).
fn check_sync_discipline(root: &Path, findings: &mut Vec<Finding>) {
    let sync_dir = root.join("crates/net/src/sync");
    for file in rust_files(&root.join("crates/net/src")) {
        if file.starts_with(&sync_dir) {
            continue;
        }
        for (number, line) in code_lines(&read(&file)) {
            for token in ["std::sync", "std::thread"] {
                if line.contains(token) {
                    findings.push(Finding {
                        path: file.clone(),
                        line: number,
                        message: format!(
                            "`{token}` used directly in crates/net; go through the \
                             `crate::sync` shims so dagrider-check can schedule it"
                        ),
                    });
                }
            }
        }
    }
}

/// The event-loop functions the `consensus-blocking` rule patrols, as
/// `(file, function)` pairs relative to the workspace root. The reactor
/// sweep functions are held to the same standard as consensus: the
/// reactor thread owns every peer, worker, and client socket, so one
/// blocking call there stalls all of them at once. Accepting is budgeted
/// into `accept_pending` (the listener is non-blocking) and dialing
/// lives on the dialer thread — neither may creep into the sweeps.
const EVENT_LOOP_FNS: &[(&str, &str)] = &[
    ("crates/net/src/runtime.rs", "consensus_loop"),
    ("crates/net/src/runtime.rs", "serve_sync"),
    ("crates/net/src/runtime.rs", "serve_batches"),
    ("crates/net/src/reactor.rs", "reactor_loop"),
    ("crates/net/src/reactor.rs", "flush_links"),
    ("crates/net/src/reactor.rs", "sweep_conns"),
    ("crates/net/src/reactor.rs", "drain_admission"),
];

/// Calls that can stall the consensus thread indefinitely. `.recv()` is
/// the exact untimed form — `.recv_timeout(` does not match.
const BLOCKING_TOKENS: &[(&str, &str)] = &[
    (".join(", "joining a thread parks consensus until that thread exits"),
    (".recv()", "untimed receive can park consensus forever; use `.recv_timeout(tick)`"),
    (".wait(", "untimed condvar wait can park consensus forever; use a timed wait"),
    ("thread::sleep(", "sleeping stalls every timer and message in the event loop"),
    (
        ".lock()",
        "raw lock in the event loop; publish-side state goes through `lock_unpoisoned` \
                 on mutexes no peer thread holds across I/O",
    ),
    (".accept(", "socket accept belongs on the acceptor thread, never in consensus"),
    ("TcpStream::connect", "dialing belongs on writer threads, never in consensus"),
];

/// Rule `consensus-blocking`: the consensus thread is the protocol's
/// single-threaded heart — every message, timer, and ordering decision
/// funnels through its event loop. A call that can block indefinitely
/// there stops the whole node, so thread joins, untimed receives/waits,
/// sleeps, raw locks, and socket I/O are banned inside the functions in
/// [`EVENT_LOOP_FNS`].
fn check_consensus_blocking(root: &Path, findings: &mut Vec<Finding>) {
    for (relative, function) in EVENT_LOOP_FNS {
        let path = root.join(relative);
        if !path.is_file() {
            continue;
        }
        check_blocking_in_function(&read(&path), &path, function, findings);
    }
}

fn check_blocking_in_function(
    source: &str,
    path: &Path,
    function: &str,
    findings: &mut Vec<Finding>,
) {
    let Some((start, end)) = function_region(source, function) else { return };
    for (number, line) in code_lines(source) {
        if number < start || number > end {
            continue;
        }
        for (token, why) in BLOCKING_TOKENS {
            if line.contains(token) {
                findings.push(Finding {
                    path: path.to_path_buf(),
                    line: number,
                    message: format!("`{token}` inside `{function}`: {why}"),
                });
            }
        }
    }
}

/// 1-based `(first, last)` line of `fn {name}`'s item, found by brace
/// counting over comment/string-stripped lines. Returns `None` when the
/// function is absent (e.g. renamed) — the caller's rule then reports
/// nothing rather than a false positive, and the function list is kept
/// honest by the unit tests.
fn function_region(source: &str, name: &str) -> Option<(usize, usize)> {
    let needle = format!("fn {name}");
    let mut in_block_comment = false;
    let mut start = None;
    let mut depth = 0usize;
    let mut seen_open = false;
    for (index, raw) in source.lines().enumerate() {
        let line = crate::source::strip_line(raw, &mut in_block_comment);
        if start.is_none() {
            if let Some(at) = line.find(&needle) {
                // Word boundary: `fn consensus_loop` must not match
                // `fn consensus_loop_helper`.
                let after = line[at + needle.len()..].chars().next();
                if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    start = Some(index + 1);
                } else {
                    continue;
                }
            } else {
                continue;
            }
        }
        depth += line.matches('{').count();
        if line.contains('{') {
            seen_open = true;
        }
        depth = depth.saturating_sub(line.matches('}').count());
        if seen_open && depth == 0 {
            return Some((start.expect("set when the needle matched"), index + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_tree(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp dir is writable");
        dir
    }

    #[test]
    fn registry_names_are_unique_and_kebab_case() {
        let rules = registry();
        let mut names: Vec<&str> = rules.iter().map(|r| r.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate rule name");
        for name in names {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule name {name} is not kebab-case"
            );
        }
    }

    #[test]
    fn preverified_rule_flags_code_but_not_prose() {
        let root = temp_tree("xtask-preverified-test");
        let src = root.join("crates/foo/src");
        std::fs::create_dir_all(&src).expect("temp dir is writable");
        std::fs::write(
            src.join("lib.rs"),
            "// EngineInput::PreVerified is fine in prose\n\
             fn f() { g(EngineInput::PreVerified(v)); }\n",
        )
        .expect("temp file is writable");
        let mut findings = Vec::new();
        check_preverified_boundary(&root, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn expect_rule_matches_only_non_literal_messages() {
        let mut findings = Vec::new();
        let dir = temp_tree("xtask-lint-test");
        let file = dir.join("sample.rs");
        std::fs::write(
            &file,
            "fn f() { a.expect(\"invariant holds\"); b.expect(msg); c.unwrap(); }\n",
        )
        .expect("temp file is writable");
        check_panic_discipline(&file, &mut findings);
        assert_eq!(
            findings.len(),
            2,
            "{:?}",
            findings.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_discipline_flags_net_but_exempts_the_shim_module_and_tests() {
        let root = temp_tree("xtask-sync-discipline-test");
        let net = root.join("crates/net/src");
        std::fs::create_dir_all(net.join("sync")).expect("temp dir is writable");
        std::fs::write(
            net.join("runtime.rs"),
            "use std::sync::Mutex;\n\
             fn f() { std::thread::spawn(|| {}); }\n\
             #[cfg(test)]\nmod tests {\n    use std::sync::Arc;\n}\n",
        )
        .expect("temp file is writable");
        std::fs::write(net.join("sync/mod.rs"), "pub use std::sync::Mutex;\n")
            .expect("temp file is writable");
        let mut findings = Vec::new();
        check_sync_discipline(&root, &mut findings);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(
            lines,
            [1, 2],
            "{:?}",
            findings.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn function_region_brackets_the_right_item() {
        let source = "fn other() {\n    x();\n}\n\nfn target(a: u32) {\n    if a > 0 {\n        y();\n    }\n}\n\nfn target_helper() {}\n";
        assert_eq!(function_region(source, "target"), Some((5, 9)));
        assert_eq!(function_region(source, "missing"), None);
    }

    #[test]
    fn event_loop_fns_exist_in_the_tree() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for (relative, function) in EVENT_LOOP_FNS {
            let source = read(&root.join(relative));
            assert!(
                function_region(&source, function).is_some(),
                "{relative} no longer contains `fn {function}`; update EVENT_LOOP_FNS"
            );
        }
    }

    #[test]
    fn consensus_blocking_flags_untimed_calls_but_not_timed_ones() {
        let source = "fn consensus_loop() {\n\
                      \x20   let e = rx.recv_timeout(tick);\n\
                      \x20   let bad = rx.recv();\n\
                      \x20   handle.join();\n\
                      }\n\
                      fn elsewhere() { other.recv(); }\n";
        let mut findings = Vec::new();
        check_blocking_in_function(
            source,
            Path::new("synthetic.rs"),
            "consensus_loop",
            &mut findings,
        );
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(
            lines,
            [3, 4],
            "{:?}",
            findings.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }
}
