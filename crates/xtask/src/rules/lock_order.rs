//! Rule `lock-order`: builds the lock-acquisition graph of `crates/net`
//! and fails on cycles.
//!
//! Two threads that take the same pair of locks in opposite orders can
//! deadlock; the classic defense is a global acquisition order. This
//! pass extracts, per source line, which locks are acquired while which
//! guards are still live, aggregates the resulting `held → acquired`
//! edges across every file in `crates/net/src`, and reports any cycle —
//! including the cross-file ones a per-file reviewer cannot see.
//!
//! The extractor is deliberately a line-level heuristic, not a type
//! checker:
//!
//! - an acquisition is a `.lock(` method call, or a call to the
//!   workspace's poison-stripping helpers (`lock_unpoisoned(&x)`,
//!   `lock(&x)`);
//! - a lock is named by its receiver path; `self.field` resolves against
//!   the enclosing `impl` block to `Type::field` so the same field gets
//!   the same name in every file;
//! - a `let`-bound guard stays live until its block ends or `drop(g)`
//!   runs; an unbound (temporary) guard lives only for its statement;
//! - passing a guard to `Condvar::wait`/`wait_timeout` releases and
//!   reacquires the same lock, which cannot change the edge set, so the
//!   guard is simply treated as continuously held.
//!
//! What a static scan cannot see: acquisitions hidden behind `Drop`
//! impls (e.g. `FrameBuf` returning its buffer to the pool takes the
//! pool lock). Those orderings are exercised dynamically by
//! `dagrider-check`; the two tools are complementary (see DESIGN.md,
//! "Concurrency discipline").

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::engine::Finding;
use crate::source::{code_lines, read, rust_files};

/// `held lock → acquired lock → first site where the edge was observed`.
type Graph = BTreeMap<String, BTreeMap<String, (PathBuf, usize)>>;

/// Entry point registered with the rule engine. The `sync/` shim module
/// is exempt: it *is* the scheduler, and its internal std locks are
/// serialized by the model token, not by the runtime's lock order.
pub fn check(root: &Path, findings: &mut Vec<Finding>) {
    let sync_dir = root.join("crates/net/src/sync");
    let mut graph = Graph::new();
    // The store crate's locks (none today, but the flusher sink surface
    // makes it a natural place for one to appear) share the runtime's
    // lock-order graph: the flusher thread lives in crates/net and holds
    // its locks across DurableStore calls.
    for dir in ["crates/net/src", "crates/store/src"] {
        for file in rust_files(&root.join(dir)) {
            if file.starts_with(&sync_dir) {
                continue;
            }
            extract(&read(&file), &file, &mut graph);
        }
    }
    report_cycles(&graph, findings);
}

/// One lock-related event on a source line, ordered by column so
/// `drop(g); other.lock()` releases before it acquires.
enum Event {
    Acquire { at: usize, lock: String, binds: bool },
    Release { at: usize, var: String },
}

/// A live guard: the lock it holds, the variable it is bound to (if
/// any), and the brace depth its scope closes at.
struct Guard {
    lock: String,
    var: Option<String>,
    depth: usize,
}

/// Scans one file and adds its `held → acquired` edges to `graph`.
fn extract(source: &str, path: &Path, graph: &mut Graph) {
    let mut depth = 0usize;
    // Stack of enclosing `impl` blocks as (type name, depth at `impl`).
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();

    for (number, line) in code_lines(source) {
        let entry_depth = depth;
        if let Some(type_name) = impl_type(&line) {
            if line.contains('{') {
                impls.push((type_name, entry_depth));
            }
        }

        let self_type = impls.last().map(|(t, _)| t.as_str());
        let mut events = Vec::new();
        collect_acquisitions(&line, self_type, &mut events);
        collect_releases(&line, &mut events);
        events.sort_by_key(|e| match e {
            Event::Acquire { at, .. } | Event::Release { at, .. } => *at,
        });

        depth = (depth + line.matches('{').count()).saturating_sub(line.matches('}').count());

        for event in events {
            match event {
                Event::Release { var, .. } => guards.retain(|g| g.var.as_deref() != Some(&var)),
                Event::Acquire { lock, binds, .. } => {
                    for guard in &guards {
                        graph
                            .entry(guard.lock.clone())
                            .or_default()
                            .entry(lock.clone())
                            .or_insert_with(|| (path.to_path_buf(), number));
                    }
                    if binds {
                        guards.push(Guard { lock, var: binding_var(&line), depth });
                    }
                }
            }
        }

        guards.retain(|g| g.depth <= depth);
        while impls.last().is_some_and(|(_, d)| depth <= *d) {
            impls.pop();
        }
    }
}

/// The type an `impl` line introduces (`impl Foo`, `impl Trait for Foo`,
/// generics stripped), or `None` for non-impl lines.
fn impl_type(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    let rest = trimmed.strip_prefix("impl")?;
    let rest = skip_generics(rest);
    let (first, after) = read_type_path(rest.trim_start());
    let target = match after.trim_start().strip_prefix("for ") {
        Some(tail) => read_type_path(tail.trim_start()).0,
        None => first,
    };
    if target.is_empty() {
        None
    } else {
        // `fmt::Display` → `Display`; the short name is what `self.x`
        // sites resolve against.
        Some(target.rsplit("::").next().unwrap_or(&target).to_string())
    }
}

/// Skips a leading `<...>` generics list, tracking nesting.
fn skip_generics(rest: &str) -> &str {
    if !rest.starts_with('<') {
        return rest;
    }
    let mut nesting = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '<' => nesting += 1,
            '>' => {
                nesting -= 1;
                if nesting == 0 {
                    return &rest[i + 1..];
                }
            }
            _ => {}
        }
    }
    ""
}

/// Reads a type path (`a::b::C`, generics dropped) off the front of
/// `rest`; returns it and the remainder.
fn read_type_path(rest: &str) -> (String, &str) {
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        let c = bytes[end] as char;
        if c.is_alphanumeric() || c == '_' || c == ':' {
            end += 1;
        } else if c == '<' {
            return (rest[..end].to_string(), skip_generics(&rest[end..]));
        } else {
            break;
        }
    }
    (rest[..end].to_string(), &rest[end..])
}

/// Finds every lock acquisition on `line` and appends `Acquire` events.
fn collect_acquisitions(line: &str, self_type: Option<&str>, events: &mut Vec<Event>) {
    // Method form: `receiver.lock(`.
    for (at, _) in line.match_indices(".lock(") {
        if is_fn_definition(line, at) {
            continue;
        }
        let receiver = path_before(line, at);
        if receiver.is_empty() {
            continue;
        }
        push_acquire(line, at, &receiver, self_type, events);
    }
    // Free-helper forms: `lock_unpoisoned(&receiver)`, `lock(&receiver)`.
    for helper in ["lock_unpoisoned(", "lock("] {
        for (at, _) in line.match_indices(helper) {
            let preceded = line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.');
            if preceded || is_fn_definition(line, at) {
                continue;
            }
            let argument = &line[at + helper.len()..];
            let receiver = path_at_front(argument);
            if receiver.is_empty() {
                continue;
            }
            push_acquire(line, at, &receiver, self_type, events);
        }
    }
}

fn push_acquire(
    line: &str,
    at: usize,
    receiver: &str,
    self_type: Option<&str>,
    events: &mut Vec<Event>,
) {
    let lock = resolve(receiver, self_type);
    // A `let` with `=` before the call binds the guard; otherwise the
    // guard is a temporary that dies at the statement's end.
    let binds = line[..at].contains("let ") && line[..at].contains('=');
    events.push(Event::Acquire { at, lock, binds });
}

/// Appends a `Release` event for each `drop(ident)` on the line.
fn collect_releases(line: &str, events: &mut Vec<Event>) {
    for (at, _) in line.match_indices("drop(") {
        let preceded = line[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.');
        if preceded {
            continue;
        }
        let argument = &line[at + "drop(".len()..];
        let var = path_at_front(argument);
        if !var.is_empty() && !var.contains('.') {
            events.push(Event::Release { at, var });
        }
    }
}

/// `true` when the match at `at` sits in a `fn` signature (a parameter
/// or method named `lock`), which is a definition, not an acquisition.
fn is_fn_definition(line: &str, at: usize) -> bool {
    line[..at].contains("fn ")
}

/// The `a.b.c`-style path immediately before byte offset `at`.
fn path_before(line: &str, at: usize) -> String {
    let bytes = line.as_bytes();
    let mut start = at;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' {
            start -= 1;
        } else {
            break;
        }
    }
    line[start..at].trim_matches('.').to_string()
}

/// The `a.b.c`-style path at the front of `rest`, after `&`/`mut `/`*`.
fn path_at_front(rest: &str) -> String {
    let rest = rest
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start_matches('*')
        .trim_start();
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        let c = bytes[end] as char;
        if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' {
            end += 1;
        } else {
            break;
        }
    }
    rest[..end].to_string()
}

/// The variable a `let` statement binds: the last identifier before the
/// `=`, which handles `let g`, `let mut g`, and `if let Ok(g)` alike.
fn binding_var(line: &str) -> Option<String> {
    let at = line.find("let ")?;
    let pattern = line[at + "let ".len()..].split('=').next()?;
    let mut last = None;
    let mut current = String::new();
    for c in pattern.chars() {
        if c.is_alphanumeric() || c == '_' {
            current.push(c);
        } else if !current.is_empty() {
            last = Some(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        last = Some(current);
    }
    last.filter(|name| name != "mut")
}

/// Resolves a receiver path to a lock name: `self` → the impl type,
/// `self.field` → `Type::field`, anything else names itself.
fn resolve(receiver: &str, self_type: Option<&str>) -> String {
    let context = self_type.unwrap_or("self");
    if receiver == "self" {
        context.to_string()
    } else if let Some(field) = receiver.strip_prefix("self.") {
        format!("{context}::{field}")
    } else {
        receiver.to_string()
    }
}

/// Reports one finding per distinct cycle in `graph`.
fn report_cycles(graph: &Graph, findings: &mut Vec<Finding>) {
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut visiting: Vec<String> = Vec::new();
    let mut done: BTreeSet<String> = BTreeSet::new();
    for start in graph.keys() {
        dfs(graph, start, &mut visiting, &mut done, &mut seen, findings);
    }
}

fn dfs(
    graph: &Graph,
    node: &str,
    visiting: &mut Vec<String>,
    done: &mut BTreeSet<String>,
    seen: &mut BTreeSet<Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    if done.contains(node) {
        return;
    }
    if let Some(pos) = visiting.iter().position(|n| n == node) {
        let cycle: Vec<String> = visiting[pos..].to_vec();
        record_cycle(graph, cycle, seen, findings);
        return;
    }
    visiting.push(node.to_string());
    if let Some(edges) = graph.get(node) {
        for next in edges.keys() {
            dfs(graph, next, visiting, done, seen, findings);
        }
    }
    visiting.pop();
    done.insert(node.to_string());
}

fn record_cycle(
    graph: &Graph,
    cycle: Vec<String>,
    seen: &mut BTreeSet<Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    // Canonicalize by rotating the smallest lock name to the front so the
    // same cycle entered from different nodes reports once.
    let smallest =
        cycle.iter().enumerate().min_by_key(|(_, name)| name.as_str()).map_or(0, |(i, _)| i);
    let mut canonical = cycle.clone();
    canonical.rotate_left(smallest);
    if !seen.insert(canonical.clone()) {
        return;
    }
    let mut sites = Vec::new();
    for (i, held) in canonical.iter().enumerate() {
        let acquired = &canonical[(i + 1) % canonical.len()];
        if let Some((path, line)) = graph.get(held).and_then(|e| e.get(acquired)) {
            sites.push(format!("{held} → {acquired} at {}:{line}", path.display()));
        }
    }
    let (path, line) = canonical
        .first()
        .and_then(|held| graph.get(held))
        .and_then(|edges| canonical.get(1 % canonical.len()).and_then(|a| edges.get(a)))
        .cloned()
        .unwrap_or_else(|| (PathBuf::from("crates/net/src"), 1));
    findings.push(Finding {
        path,
        line,
        message: format!(
            "lock-order cycle: {} — pick one global order and acquire in it everywhere \
             [{}]",
            canonical.join(" → "),
            sites.join("; ")
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(sources: &[&str]) -> Graph {
        let mut graph = Graph::new();
        for (i, source) in sources.iter().enumerate() {
            extract(source, Path::new(&format!("synthetic{i}.rs")), &mut graph);
        }
        graph
    }

    fn findings_of(sources: &[&str]) -> Vec<Finding> {
        let mut findings = Vec::new();
        report_cycles(&graph_of(sources), &mut findings);
        findings
    }

    #[test]
    fn cross_file_inversion_is_a_cycle() {
        let forward = "fn f() {\n    let a = alpha.lock();\n    let b = beta.lock();\n}\n";
        let backward = "fn g() {\n    let b = beta.lock();\n    let a = alpha.lock();\n}\n";
        let findings = findings_of(&[forward, backward]);
        assert_eq!(
            findings.len(),
            1,
            "{:?}",
            findings.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        assert!(findings[0].message.contains("alpha → beta"), "{}", findings[0].message);
        assert!(findings[0].message.contains("beta → alpha"), "{}", findings[0].message);
    }

    #[test]
    fn consistent_order_across_files_is_clean() {
        let one = "fn f() {\n    let a = alpha.lock();\n    let b = beta.lock();\n}\n";
        let two = "fn g() {\n    let a = alpha.lock();\n    if x {\n        let b = beta.lock();\n    }\n}\n";
        assert!(findings_of(&[one, two]).is_empty());
    }

    #[test]
    fn guard_dropped_before_reacquire_breaks_the_edge() {
        // Without `drop` handling this would read as alpha → beta AND
        // beta → alpha — a false-positive cycle.
        let source = "fn f() {\n\
                      \x20   let a = alpha.lock();\n\
                      \x20   drop(a);\n\
                      \x20   let b = beta.lock();\n\
                      \x20   let a2 = alpha.lock();\n\
                      }\n";
        let graph = graph_of(&[source]);
        assert!(!graph.contains_key("alpha"), "alpha held nothing: {graph:?}");
        assert!(graph.get("beta").is_some_and(|e| e.contains_key("alpha")));
        assert!(findings_of(&[source]).is_empty());
    }

    #[test]
    fn self_fields_resolve_against_the_impl_type() {
        let source = "impl Pool {\n\
                      \x20   fn f(&self) {\n\
                      \x20       let a = self.frames.lock();\n\
                      \x20       let b = self.stats.lock();\n\
                      \x20   }\n\
                      }\n\
                      impl Other {\n\
                      \x20   fn g(&self) {\n\
                      \x20       let a = self.frames.lock();\n\
                      \x20   }\n\
                      }\n";
        let graph = graph_of(&[source]);
        assert!(
            graph.get("Pool::frames").is_some_and(|e| e.contains_key("Pool::stats")),
            "{graph:?}"
        );
        assert!(!graph.contains_key("Other::frames"), "Other::g nests nothing: {graph:?}");
    }

    #[test]
    fn scope_exit_releases_guards() {
        // The beta guard dies with its block, so the later alpha
        // acquisition only sees the outer alpha guard (self-edges from
        // re-acquiring alpha would be a cycle; a fresh lock is not).
        let source = "fn f() {\n\
                      \x20   {\n\
                      \x20       let b = beta.lock();\n\
                      \x20   }\n\
                      \x20   let a = alpha.lock();\n\
                      }\n";
        let graph = graph_of(&[source]);
        assert!(!graph.contains_key("beta"), "{graph:?}");
    }

    #[test]
    fn reacquiring_a_held_lock_is_a_self_cycle() {
        let source = "fn f() {\n    let a = m.lock();\n    let b = m.lock();\n}\n";
        let findings = findings_of(&[source]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains('m'), "{}", findings[0].message);
    }

    #[test]
    fn helper_calls_name_the_mutex_argument() {
        let source = "fn f() {\n\
                      \x20   let a = lock_unpoisoned(&published.ordered);\n\
                      \x20   let b = lock(&queue.inner);\n\
                      }\n";
        let graph = graph_of(&[source]);
        assert!(
            graph.get("published.ordered").is_some_and(|e| e.contains_key("queue.inner")),
            "{graph:?}"
        );
    }
}
