//! Source-tree helpers shared by the lint rules: file discovery and the
//! comment/string/test-code stripper every textual rule builds on.

use std::path::{Path, PathBuf};

/// The repository root: two levels above this crate's manifest.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Root source file (`src/lib.rs`, else `src/main.rs`) of every workspace
/// member: the root package, `crates/*`, and `vendor/*`.
pub fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("src/lib.rs")];
    for group in ["crates", "vendor"] {
        let Ok(entries) = std::fs::read_dir(root.join(group)) else { continue };
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        for dir in dirs {
            let lib = dir.join("src/lib.rs");
            let main = dir.join("src/main.rs");
            if lib.is_file() {
                out.push(lib);
            } else if main.is_file() {
                out.push(main);
            }
        }
    }
    out
}

/// Every `.rs` file under `dir`, recursively, sorted for stable output.
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&current) else { continue };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

pub fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Yields `(line_number, code)` for the non-test, non-comment portion of
/// a source file: `#[cfg(test)]` items are dropped wholesale, line/block
/// comments and string-literal contents are blanked so panics named in
/// prose or messages don't trip the rules.
pub fn code_lines(source: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    // Once a `#[cfg(test)]` attribute is seen, the next item's braces are
    // tracked and everything until they balance is skipped.
    let mut pending_test_attr = false;
    let mut test_depth = 0usize;
    for (index, raw) in source.lines().enumerate() {
        let code = strip_line(raw, &mut in_block_comment);
        let trimmed = raw.trim_start();
        if test_depth == 0 && trimmed.starts_with("#[cfg(test)]") {
            pending_test_attr = true;
            continue;
        }
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        if pending_test_attr {
            if opens > 0 {
                pending_test_attr = false;
                test_depth = opens.saturating_sub(closes).max(1);
            } else if trimmed.starts_with("#[") || trimmed.is_empty() {
                // More attributes (or blanks) before the item itself.
            } else if code.contains(';') {
                pending_test_attr = false; // braceless item, e.g. `use`
            }
            continue;
        }
        if test_depth > 0 {
            test_depth = (test_depth + opens).saturating_sub(closes);
            continue;
        }
        out.push((index + 1, code));
    }
    out
}

/// Blanks comments and string/char literal contents from one line,
/// carrying block-comment state across lines. String delimiters are kept
/// and non-empty contents collapse to a single `s`, so rules can still
/// distinguish `.expect("")` from `.expect("msg")`. Escapes inside
/// strings are honored; multi-line and raw strings are treated
/// conservatively (the remainder of the line is dropped).
pub fn strip_line(line: &str, in_block_comment: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut in_string = false;
    let mut string_had_content = false;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i..].starts_with(b"*/") {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_string {
            match bytes[i] {
                b'\\' => {
                    string_had_content = true;
                    i += 2;
                }
                b'"' => {
                    if string_had_content {
                        out.push('s');
                    }
                    out.push('"');
                    in_string = false;
                    i += 1;
                }
                _ => {
                    string_had_content = true;
                    i += 1;
                }
            }
            continue;
        }
        if bytes[i..].starts_with(b"//") {
            break; // line comment: rest of line is prose
        }
        if bytes[i..].starts_with(b"/*") {
            *in_block_comment = true;
            i += 2;
            continue;
        }
        match bytes[i] {
            b'"' => {
                out.push('"');
                in_string = true;
                string_had_content = false;
                i += 1;
            }
            // Char literal like '{' — blank it; lifetimes ('a) have no
            // closing quote within two chars and fall through harmlessly.
            b'\'' if i + 2 < bytes.len() && bytes[i + 2] == b'\'' => i += 3,
            byte => {
                out.push(byte as char);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_lines_skips_test_modules() {
        let source = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let lines = code_lines(source);
        let joined: String = lines.iter().map(|(_, l)| l.as_str()).collect();
        assert!(joined.contains("fn a"));
        assert!(joined.contains("fn c"));
        assert!(!joined.contains("fn b"));
    }

    #[test]
    fn strip_line_blanks_strings_and_comments() {
        let mut block = false;
        assert_eq!(strip_line("let x = \"{\"; // }", &mut block), "let x = \"s\"; ");
        assert!(!block);
        assert_eq!(strip_line("a /* open", &mut block), "a ");
        assert!(block);
        assert_eq!(strip_line("still */ b", &mut block), " b");
        assert!(!block);
    }
}
