//! The lint rule engine: named rules, findings, and the runner.
//!
//! Each rule is a pure function from the workspace root to a list of
//! [`Finding`]s. Rules are registered by name in
//! [`crate::rules::registry`] so `cargo xtask lint --rule NAME` can run
//! one in isolation and `--list` can enumerate them.

use std::fmt;
use std::path::{Path, PathBuf};

/// One finding, pointing at a file and (1-based) line.
pub struct Finding {
    pub path: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.path.display(), self.line, self.message)
    }
}

/// A named lint pass over the workspace sources.
pub struct Rule {
    /// Stable kebab-case identifier, used by `lint --rule NAME`.
    pub name: &'static str,
    /// One-line description shown by `lint --list`.
    pub summary: &'static str,
    /// The pass itself: appends findings for the workspace at `root`.
    pub run: fn(&Path, &mut Vec<Finding>),
}

/// Runs every rule in `rules` and returns the combined findings.
pub fn run_rules(root: &Path, rules: &[&Rule]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in rules {
        (rule.run)(root, &mut findings);
    }
    findings
}
