//! The reliable broadcast abstraction (§2 of the paper).

use dagrider_crypto::{sha256, Digest};
use dagrider_trace::SharedTracer;
use dagrider_types::{Committee, Decode, Encode, ProcessId, Round};
use rand::rngs::StdRng;

/// A reliable-broadcast delivery: the paper's `r_deliver_i(m, r, p_k)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RbcDelivery {
    /// `p_k` — the process that called `r_bcast(m, r)`.
    pub source: ProcessId,
    /// `r` — the broadcast's round number.
    pub round: Round,
    /// `m` — the delivered payload bytes.
    pub payload: Vec<u8>,
}

/// An effect emitted by a broadcast state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RbcAction<M> {
    /// Put `message` on the wire to another process. (Self-routing is
    /// handled inside the state machines; `Send` targets are always other
    /// processes.)
    Send(ProcessId, M),
    /// Output `r_deliver` to the layer above.
    Deliver(RbcDelivery),
}

impl<M> RbcAction<M> {
    /// The delivery, if this action is one.
    pub fn as_delivery(&self) -> Option<&RbcDelivery> {
        match self {
            RbcAction::Deliver(d) => Some(d),
            RbcAction::Send(..) => None,
        }
    }
}

/// A multi-instance reliable broadcast endpoint for one process.
///
/// One value of this type handles *all* broadcast instances — an instance
/// is identified by `(source, round)`, matching the paper's convention that
/// each process broadcasts at most one message per round (its DAG vertex).
///
/// # Guarantees (§2)
///
/// * **Agreement** — if a correct process delivers `(m, r, p_k)`, every
///   correct process eventually delivers it (with probability 1; the
///   probabilistic instantiation achieves this whp).
/// * **Integrity** — at most one delivery per `(r, p_k)`, regardless of `m`.
/// * **Validity** — a correct sender's broadcast is eventually delivered by
///   all correct processes.
pub trait ReliableBroadcast {
    /// The wire message type of this instantiation.
    type Message: Encode + Decode + Clone + std::fmt::Debug;

    /// Creates the endpoint for process `me`. `seed` feeds any local
    /// randomness (only the probabilistic instantiation uses it).
    fn new(committee: Committee, me: ProcessId, seed: u64) -> Self;

    /// The committee this endpoint serves.
    fn committee(&self) -> Committee;

    /// This endpoint's process id.
    fn me(&self) -> ProcessId;

    /// `r_bcast_me(payload, round)`: starts reliably broadcasting. Correct
    /// callers use strictly increasing rounds and broadcast at most once
    /// per round.
    fn rbcast(
        &mut self,
        payload: Vec<u8>,
        round: Round,
        rng: &mut StdRng,
    ) -> Vec<RbcAction<Self::Message>>;

    /// Handles a decoded protocol message from `from` (an authenticated
    /// peer id; the message contents are untrusted).
    fn on_message(
        &mut self,
        from: ProcessId,
        message: Self::Message,
        rng: &mut StdRng,
    ) -> Vec<RbcAction<Self::Message>>;

    /// The payload bytes whose SHA-256 digest this instantiation uses as
    /// its equivocation-detection key, if it uses one. Drivers that verify
    /// messages off the protocol thread use this (via [`message_digest`])
    /// to pre-compute the digest and hand it to
    /// [`on_message_with_digest`], keeping hashing off the hot path. The
    /// default (`None`) means digests cannot be pre-computed.
    ///
    /// [`message_digest`]: ReliableBroadcast::message_digest
    /// [`on_message_with_digest`]: ReliableBroadcast::on_message_with_digest
    fn payload_bytes(message: &Self::Message) -> Option<&[u8]> {
        let _ = message;
        None
    }

    /// The digest `on_message` would compute for `message`, if any — the
    /// value a driver may pass to [`on_message_with_digest`]. Callers must
    /// treat the pair `(message, digest)` as inseparable: supplying a
    /// digest that was not computed from this exact message breaks the
    /// protocol's equivocation detection.
    ///
    /// [`on_message_with_digest`]: ReliableBroadcast::on_message_with_digest
    fn message_digest(message: &Self::Message) -> Option<Digest> {
        Self::payload_bytes(message).map(sha256)
    }

    /// Like [`on_message`], but with an optional pre-computed payload
    /// digest (from [`message_digest`] on the *same* message). The default
    /// ignores the hint and defers to [`on_message`]; instantiations that
    /// hash payloads override this to skip the recomputation.
    ///
    /// [`on_message`]: ReliableBroadcast::on_message
    /// [`message_digest`]: ReliableBroadcast::message_digest
    fn on_message_with_digest(
        &mut self,
        from: ProcessId,
        message: Self::Message,
        digest: Option<Digest>,
        rng: &mut StdRng,
    ) -> Vec<RbcAction<Self::Message>> {
        let _ = digest;
        self.on_message(from, message, rng)
    }

    /// A short human-readable name for reports ("bracha", "avid", …).
    fn name() -> &'static str;

    /// Garbage-collects per-instance state for rounds strictly below
    /// `before`. Safe once the layer above has consumed those rounds; the
    /// default implementation keeps everything.
    fn prune(&mut self, before: Round) {
        let _ = before;
    }

    /// Attaches a tracer so the endpoint records per-instance phase events
    /// ([`dagrider_trace::TraceEvent::RbcPhase`]). The default
    /// implementation discards it (no tracing).
    fn set_tracer(&mut self, tracer: SharedTracer) {
        let _ = tracer;
    }
}
