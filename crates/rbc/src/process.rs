//! Adapter running any [`ReliableBroadcast`] as a simulator [`Actor`].

use bytes::Bytes;
use dagrider_simnet::{Actor, Context};
use dagrider_trace::SharedTracer;
use dagrider_types::{Decode, Encode, ProcessId, Round};

use crate::api::{RbcAction, RbcDelivery, ReliableBroadcast};

/// A standalone reliable-broadcast process: broadcasts a queue of payloads
/// on startup and records everything it delivers.
///
/// Used by the RBC property tests and the communication-complexity
/// benchmarks; the full protocol stack embeds the state machines directly.
#[derive(Debug)]
pub struct RbcProcess<B> {
    rbc: B,
    to_broadcast: Vec<(Round, Vec<u8>)>,
    delivered: Vec<RbcDelivery>,
    decode_failures: usize,
    tracer: SharedTracer,
}

impl<B: ReliableBroadcast> RbcProcess<B> {
    /// Creates a process that will `r_bcast` each `(round, payload)` pair
    /// at startup.
    pub fn new(rbc: B, to_broadcast: Vec<(Round, Vec<u8>)>) -> Self {
        Self {
            rbc,
            to_broadcast,
            delivered: Vec::new(),
            decode_failures: 0,
            tracer: SharedTracer::disabled(),
        }
    }

    /// Attaches `tracer` to both this adapter and the underlying endpoint;
    /// phase events get stamped with the simulator's virtual clock.
    pub fn with_tracer(mut self, tracer: SharedTracer) -> Self {
        self.rbc.set_tracer(tracer.clone());
        self.tracer = tracer;
        self
    }

    /// Everything delivered so far, in delivery order.
    pub fn delivered(&self) -> &[RbcDelivery] {
        &self.delivered
    }

    /// Messages that failed to decode (malformed/malicious wire bytes).
    pub fn decode_failures(&self) -> usize {
        self.decode_failures
    }

    /// The underlying broadcast endpoint.
    pub fn rbc(&self) -> &B {
        &self.rbc
    }

    fn apply(&mut self, actions: Vec<RbcAction<B::Message>>, ctx: &mut Context<'_>) {
        for action in actions {
            match action {
                RbcAction::Send(to, message) => {
                    ctx.send(to, Bytes::from(message.to_bytes()));
                }
                RbcAction::Deliver(delivery) => self.delivered.push(delivery),
            }
        }
    }
}

impl<B: ReliableBroadcast> Actor for RbcProcess<B> {
    fn init(&mut self, ctx: &mut Context<'_>) {
        self.tracer.set_now(ctx.now());
        let queued = std::mem::take(&mut self.to_broadcast);
        for (round, payload) in queued {
            let actions = self.rbc.rbcast(payload, round, ctx.rng());
            self.apply(actions, ctx);
        }
    }

    fn on_message(&mut self, from: ProcessId, payload: &[u8], ctx: &mut Context<'_>) {
        self.tracer.set_now(ctx.now());
        match B::Message::from_bytes(payload) {
            Ok(message) => {
                let actions = self.rbc.on_message(from, message, ctx.rng());
                self.apply(actions, ctx);
            }
            Err(_) => self.decode_failures += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use dagrider_simnet::{Simulation, UniformScheduler};
    use dagrider_types::Committee;

    use super::*;
    use crate::avid::AvidRbc;
    use crate::bracha::BrachaRbc;
    use crate::probabilistic::ProbabilisticRbc;

    fn all_deliver_identically<B: ReliableBroadcast>(n: usize, seed: u64) {
        let committee = Committee::new(n).unwrap();
        let actors: Vec<RbcProcess<B>> = committee
            .members()
            .map(|p| {
                RbcProcess::new(
                    B::new(committee, p, seed),
                    vec![(Round::new(1), format!("payload-from-{p}").into_bytes())],
                )
            })
            .collect();
        let mut sim = Simulation::new(committee, actors, UniformScheduler::new(1, 20), seed);
        sim.run();
        let reference: Vec<_> = {
            let mut d = sim.actor(ProcessId::new(0)).delivered().to_vec();
            d.sort_by_key(|x| (x.source, x.round));
            d
        };
        assert_eq!(reference.len(), n, "{}: everyone's broadcast delivers", B::name());
        for p in committee.members() {
            let mut d = sim.actor(p).delivered().to_vec();
            d.sort_by_key(|x| (x.source, x.round));
            assert_eq!(d, reference, "{}: {p} disagrees", B::name());
        }
    }

    #[test]
    fn bracha_full_stack_agreement() {
        all_deliver_identically::<BrachaRbc>(4, 1);
        all_deliver_identically::<BrachaRbc>(7, 2);
    }

    #[test]
    fn avid_full_stack_agreement() {
        all_deliver_identically::<AvidRbc>(4, 3);
        all_deliver_identically::<AvidRbc>(7, 4);
    }

    #[test]
    fn probabilistic_full_stack_agreement() {
        all_deliver_identically::<ProbabilisticRbc>(4, 5);
        all_deliver_identically::<ProbabilisticRbc>(7, 6);
    }

    #[test]
    fn malformed_bytes_are_counted_not_crashing() {
        use dagrider_simnet::Either;

        /// Broadcasts undecodable garbage to everyone at startup.
        struct GarbageSender;
        impl Actor for GarbageSender {
            fn init(&mut self, ctx: &mut Context<'_>) {
                ctx.broadcast_to_others(Bytes::from_static(&[0xff, 0xff, 0xff, 0xff]));
            }
            fn on_message(&mut self, _: ProcessId, _: &[u8], _: &mut Context<'_>) {}
        }

        let committee = Committee::new(4).unwrap();
        let actors: Vec<Either<RbcProcess<BrachaRbc>, GarbageSender>> = committee
            .members()
            .map(|p| {
                if p == ProcessId::new(3) {
                    Either::Right(GarbageSender)
                } else {
                    Either::Left(RbcProcess::new(
                        BrachaRbc::new(committee, p, 0),
                        vec![(Round::new(1), b"ok".to_vec())],
                    ))
                }
            })
            .collect();
        let mut sim = Simulation::new(committee, actors, UniformScheduler::new(1, 5), 9);
        sim.mark_byzantine(ProcessId::new(3));
        sim.run();
        for p in [0u32, 1, 2].map(ProcessId::new) {
            let actor = sim.actor(p).as_left().unwrap();
            assert_eq!(actor.decode_failures(), 1, "{p} should have seen garbage");
            // The honest broadcasts still delivered despite the garbage.
            assert_eq!(actor.delivered().len(), 3);
        }
    }
}
