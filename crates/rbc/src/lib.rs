//! Reliable broadcast instantiations for DAG-Rider.
//!
//! The paper (§2) abstracts its communication layer behind a *reliable
//! broadcast* with *Agreement*, *Integrity*, and *Validity*, and shows
//! (Table 1) how different instantiations trade communication complexity
//! for assumptions:
//!
//! | Instantiation | Per-broadcast bits | DAG-Rider amortized/decision |
//! |---------------|--------------------|------------------------------|
//! | [`BrachaRbc`] — Bracha \[11\] | `O(n²·M)` | `O(n²)` |
//! | [`ProbabilisticRbc`] — gossip/sample à la Guerraoui et al. \[25\] | `O(n·log n·M)` whp | `O(n·log n)`, `(1-ε)` liveness |
//! | [`AvidRbc`] — Cachin–Tessaro verifiable information dispersal \[14\] | `O(n·M + n²·log n)` | `O(n)` with `n log n` batching |
//!
//! All three are **sans-io state machines** implementing
//! [`ReliableBroadcast`]: they consume decoded messages and emit
//! [`RbcAction`]s (sends and deliveries). [`RbcProcess`] adapts any of them
//! to a `dagrider-simnet` [`Actor`](dagrider_simnet::Actor) for standalone
//! operation, and `dagrider-core` embeds them beneath the DAG layer.
//!
//! The interface mirrors the paper exactly: [`ReliableBroadcast::rbcast`]
//! is `r_bcast_k(m, r)`; an [`RbcAction::Deliver`] is
//! `r_deliver_i(m, r, p_k)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod avid;
mod bracha;
pub mod byzantine;
mod probabilistic;
mod process;

pub use api::{RbcAction, RbcDelivery, ReliableBroadcast};
pub use avid::{AvidMessage, AvidRbc};
pub use bracha::{BrachaKind, BrachaMessage, BrachaRbc};
pub use probabilistic::{ProbConfig, ProbKind, ProbMessage, ProbabilisticRbc};
pub use process::RbcProcess;
