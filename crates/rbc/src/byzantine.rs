//! Byzantine actor implementations for fault-injection tests and
//! experiments.
//!
//! The model (§2) allows up to `f` processes to behave arbitrarily. These
//! actors realize the canonical attacks against the broadcast layer:
//! equivocation (which the RBC quorums must neutralize) and muteness
//! (which the DAG layer must tolerate by advancing on `2f + 1` vertices).

use bytes::Bytes;
use dagrider_simnet::{Actor, Context};
use dagrider_types::{Encode, ProcessId, Round};

use crate::bracha::{BrachaKind, BrachaMessage};

/// A Byzantine process that stays completely silent: it never broadcasts
/// and ignores all traffic. Indistinguishable from a crash to its peers.
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentActor;

impl Actor for SilentActor {
    fn on_message(&mut self, _from: ProcessId, _payload: &[u8], _ctx: &mut Context<'_>) {}
}

/// A Byzantine Bracha sender that **equivocates**: it `INIT`s payload `a`
/// to one half of the committee and payload `b` to the other half, then
/// participates honestly in the echo/ready phases for whatever it receives
/// (maximizing confusion).
///
/// Reliable broadcast must ensure that correct processes deliver at most
/// one of the two payloads — and all the same one (Agreement + Integrity).
#[derive(Debug)]
pub struct BrachaEquivocator {
    round: Round,
    payload_a: Vec<u8>,
    payload_b: Vec<u8>,
    inner: crate::bracha::BrachaRbc,
}

impl BrachaEquivocator {
    /// Creates an equivocator that will send `payload_a` / `payload_b` for
    /// its vertex in `round`.
    pub fn new(
        committee: dagrider_types::Committee,
        me: ProcessId,
        round: Round,
        payload_a: Vec<u8>,
        payload_b: Vec<u8>,
    ) -> Self {
        use crate::api::ReliableBroadcast;
        Self { round, payload_a, payload_b, inner: crate::bracha::BrachaRbc::new(committee, me, 0) }
    }
}

impl Actor for BrachaEquivocator {
    fn init(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.me();
        let committee = ctx.committee();
        for (i, to) in committee.others(me).enumerate() {
            let payload = if i % 2 == 0 { self.payload_a.clone() } else { self.payload_b.clone() };
            let msg =
                BrachaMessage { source: me, round: self.round, kind: BrachaKind::Init(payload) };
            ctx.send(to, Bytes::from(msg.to_bytes()));
        }
    }

    fn on_message(&mut self, from: ProcessId, payload: &[u8], ctx: &mut Context<'_>) {
        use crate::api::{RbcAction, ReliableBroadcast};
        use dagrider_types::Decode;
        // Participate "honestly" in everyone's instances so the run makes
        // progress; the damage was done in init.
        if let Ok(message) = BrachaMessage::from_bytes(payload) {
            for action in self.inner.on_message(from, message, ctx.rng()) {
                if let RbcAction::Send(to, m) = action {
                    ctx.send(to, Bytes::from(m.to_bytes()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use dagrider_simnet::{Either, Simulation, UniformScheduler};
    use dagrider_types::Committee;

    use super::*;
    use crate::api::ReliableBroadcast;
    use crate::bracha::BrachaRbc;
    use crate::process::RbcProcess;

    type Mixed = Either<RbcProcess<BrachaRbc>, BrachaEquivocator>;

    #[test]
    fn equivocation_never_splits_correct_processes() {
        for seed in 0..20u64 {
            let committee = Committee::new(4).unwrap();
            let byz = ProcessId::new(3);
            let actors: Vec<Mixed> = committee
                .members()
                .map(|p| {
                    if p == byz {
                        Either::Right(BrachaEquivocator::new(
                            committee,
                            p,
                            Round::new(1),
                            b"AAAA".to_vec(),
                            b"BBBB".to_vec(),
                        ))
                    } else {
                        Either::Left(RbcProcess::new(BrachaRbc::new(committee, p, 0), Vec::new()))
                    }
                })
                .collect();
            let mut sim = Simulation::new(committee, actors, UniformScheduler::new(1, 10), seed);
            sim.mark_byzantine(byz);
            sim.run();
            // Collect what each correct process delivered for (p3, r1).
            let outcomes: Vec<Option<Vec<u8>>> = committee
                .members()
                .filter(|&p| p != byz)
                .map(|p| {
                    sim.actor(p)
                        .as_left()
                        .unwrap()
                        .delivered()
                        .iter()
                        .find(|d| d.source == byz)
                        .map(|d| d.payload.clone())
                })
                .collect();
            // Integrity + agreement: all deliveries (if any) are the same
            // payload, one of the two equivocated values.
            let delivered: Vec<&Vec<u8>> = outcomes.iter().flatten().collect();
            if let Some(first) = delivered.first() {
                assert!(
                    delivered.iter().all(|p| p == first),
                    "seed {seed}: correct processes split: {outcomes:?}"
                );
                assert!(**first == b"AAAA".to_vec() || **first == b"BBBB".to_vec());
            }
        }
    }

    #[test]
    fn silent_process_does_not_block_others() {
        let committee = Committee::new(4).unwrap();
        let silent = ProcessId::new(0);
        let actors: Vec<Either<RbcProcess<BrachaRbc>, SilentActor>> = committee
            .members()
            .map(|p| {
                if p == silent {
                    Either::Right(SilentActor)
                } else {
                    Either::Left(RbcProcess::new(
                        BrachaRbc::new(committee, p, 0),
                        vec![(Round::new(1), format!("from-{p}").into_bytes())],
                    ))
                }
            })
            .collect();
        let mut sim = Simulation::new(committee, actors, UniformScheduler::new(1, 10), 5);
        sim.mark_byzantine(silent);
        sim.run();
        for p in committee.members().filter(|&p| p != silent) {
            let delivered = sim.actor(p).as_left().unwrap().delivered();
            assert_eq!(delivered.len(), 3, "{p} should deliver the three correct broadcasts");
        }
    }
}
