//! Cachin–Tessaro asynchronous verifiable information dispersal (the
//! paper's reference \[14\]), used as the communication-optimal reliable
//! broadcast.
//!
//! Instead of echoing the full payload as Bracha does, the sender
//! Reed–Solomon-encodes it into `n` fragments (`k = f + 1` suffice to
//! reconstruct), commits to them with a Merkle root, and *disperses* one
//! authenticated fragment per process. Each process echoes only **its own
//! fragment** to everyone; `2f + 1` valid echoes for one root allow
//! reconstruction (and a consistency re-encode check), after which the
//! usual `READY` round with amplification drives delivery.
//!
//! Per-broadcast bits: `n` processes each send `n` echoes of size
//! `|M|/(f+1) + O(log n)` — i.e. `O(n·|M| + n²·log n)`, which is what lets
//! DAG-Rider reach amortized `O(n)` per decision with `n log n` batching
//! (§6.2).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dagrider_crypto::{Digest, MerkleProof, MerkleTree, ReedSolomon, Shard};
use dagrider_trace::{RbcPhase, RbcPrimitive, SharedTracer, TraceEvent};
use dagrider_types::{Committee, Decode, DecodeError, Encode, ProcessId, Round, VertexRef};
use rand::rngs::StdRng;

use crate::api::{RbcAction, RbcDelivery, ReliableBroadcast};

/// The phase of an [`AvidMessage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AvidKind {
    /// The sender hands a process its authenticated fragment.
    Disperse {
        /// Merkle root over all `n` fragments.
        root: Digest,
        /// The recipient's fragment.
        shard: Shard,
        /// Inclusion proof of `shard` under `root`.
        proof: MerkleProof,
    },
    /// A process republishes its own fragment as a witness.
    Echo {
        /// Merkle root being echoed.
        root: Digest,
        /// The echoing process's fragment.
        shard: Shard,
        /// Inclusion proof.
        proof: MerkleProof,
    },
    /// Commitment to deliver the payload committed by `root`.
    Ready {
        /// The root being committed.
        root: Digest,
    },
}

/// An AVID protocol message, tagged with its instance `(source, round)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvidMessage {
    /// The broadcasting process of the instance.
    pub source: ProcessId,
    /// The instance's round number.
    pub round: Round,
    /// The phase payload.
    pub kind: AvidKind,
}

impl Encode for AvidMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.source.encode(buf);
        self.round.encode(buf);
        match &self.kind {
            AvidKind::Disperse { root, shard, proof } => {
                0u8.encode(buf);
                root.encode(buf);
                shard.encode(buf);
                proof.encode(buf);
            }
            AvidKind::Echo { root, shard, proof } => {
                1u8.encode(buf);
                root.encode(buf);
                shard.encode(buf);
                proof.encode(buf);
            }
            AvidKind::Ready { root } => {
                2u8.encode(buf);
                root.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        let kind_len = match &self.kind {
            AvidKind::Disperse { root, shard, proof } | AvidKind::Echo { root, shard, proof } => {
                root.encoded_len() + shard.encoded_len() + proof.encoded_len()
            }
            AvidKind::Ready { root } => root.encoded_len(),
        };
        self.source.encoded_len() + self.round.encoded_len() + 1 + kind_len
    }
}

impl Decode for AvidMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let source = ProcessId::decode(buf)?;
        let round = Round::decode(buf)?;
        let tag = u8::decode(buf)?;
        let kind = match tag {
            0 | 1 => {
                let root = Digest::decode(buf)?;
                let shard = Shard::decode(buf)?;
                let proof = MerkleProof::decode(buf)?;
                if tag == 0 {
                    AvidKind::Disperse { root, shard, proof }
                } else {
                    AvidKind::Echo { root, shard, proof }
                }
            }
            2 => AvidKind::Ready { root: Digest::decode(buf)? },
            _ => return Err(DecodeError::Invalid("unknown avid phase tag")),
        };
        Ok(Self { source, round, kind })
    }
}

#[derive(Debug, Default)]
struct Instance {
    echoed: bool,
    readied: bool,
    delivered: bool,
    /// root → fragments observed via valid echoes (keyed by shard index).
    echo_shards: BTreeMap<Digest, BTreeMap<u8, Shard>>,
    /// root → who echoed it.
    echo_senders: BTreeMap<Digest, BTreeSet<ProcessId>>,
    /// root → who sent READY.
    readies: BTreeMap<Digest, BTreeSet<ProcessId>>,
    /// Reconstructed-and-verified payload with its root.
    payload: Option<(Digest, Vec<u8>)>,
    /// Roots whose reconstruction failed the re-encode check (a bad
    /// dealer); never retried.
    bad_roots: BTreeSet<Digest>,
}

/// AVID reliable broadcast endpoint. See the module docs above.
#[derive(Debug)]
pub struct AvidRbc {
    committee: Committee,
    me: ProcessId,
    rs: ReedSolomon,
    instances: BTreeMap<(ProcessId, Round), Instance>,
    tracer: SharedTracer,
}

enum Step {
    SendAll(AvidMessage),
    Deliver(RbcDelivery),
}

impl AvidRbc {
    /// Number of live instances (diagnostics).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    fn process(&mut self, from: ProcessId, message: AvidMessage) -> Vec<RbcAction<AvidMessage>> {
        let mut actions = Vec::new();
        let mut work = VecDeque::from([(from, message)]);
        while let Some((sender, msg)) = work.pop_front() {
            for out in self.handle(sender, msg) {
                match out {
                    Step::SendAll(m) => {
                        work.push_back((self.me, m.clone()));
                        for to in self.committee.others(self.me) {
                            actions.push(RbcAction::Send(to, m.clone()));
                        }
                    }
                    Step::Deliver(d) => actions.push(RbcAction::Deliver(d)),
                }
            }
        }
        actions
    }

    fn handle(&mut self, from: ProcessId, msg: AvidMessage) -> Vec<Step> {
        let key = (msg.source, msg.round);
        match msg.kind {
            AvidKind::Disperse { root, shard, proof } => {
                // Only the instance's source disperses, and only our own
                // fragment is acceptable.
                if from != msg.source
                    || shard.index != self.me.index() as u8
                    || proof.index() != u64::from(shard.index)
                    || !proof.verify(root, &shard.data)
                {
                    return Vec::new();
                }
                let instance = self.instances.entry(key).or_default();
                if instance.echoed {
                    return Vec::new();
                }
                instance.echoed = true;
                self.tracer.record(TraceEvent::RbcPhase {
                    instance: VertexRef::new(msg.round, msg.source),
                    primitive: RbcPrimitive::Avid,
                    phase: RbcPhase::Witness,
                });
                vec![Step::SendAll(AvidMessage {
                    source: msg.source,
                    round: msg.round,
                    kind: AvidKind::Echo { root, shard, proof },
                })]
            }
            AvidKind::Echo { root, shard, proof } => {
                // Each process may echo exactly its own fragment.
                if shard.index != from.index() as u8
                    || proof.index() != u64::from(shard.index)
                    || !proof.verify(root, &shard.data)
                {
                    return Vec::new();
                }
                let instance = self.instances.entry(key).or_default();
                instance.echo_shards.entry(root).or_default().insert(shard.index, shard);
                instance.echo_senders.entry(root).or_default().insert(from);
                self.advance(key, msg.source, msg.round)
            }
            AvidKind::Ready { root } => {
                let instance = self.instances.entry(key).or_default();
                instance.readies.entry(root).or_default().insert(from);
                self.advance(key, msg.source, msg.round)
            }
        }
    }

    /// Re-evaluates an instance's reconstruction / ready / deliver rules.
    fn advance(&mut self, key: (ProcessId, Round), source: ProcessId, round: Round) -> Vec<Step> {
        let quorum = self.committee.quorum();
        let small_quorum = self.committee.small_quorum();
        let rs = self.rs;
        let me_is_fresh = |instance: &Instance, root: &Digest| {
            instance.payload.as_ref().is_none_or(|(r, _)| r != root)
        };

        let instance = self.instances.get_mut(&key).expect("instance exists");
        let mut steps = Vec::new();

        // Reconstruct once a root has 2f+1 echo witnesses (or f+1 readies
        // with at least k fragments available — the late-joiner path).
        let candidate_roots: Vec<Digest> = instance
            .echo_shards
            .keys()
            .copied()
            .filter(|root| !instance.bad_roots.contains(root))
            .collect();
        for root in candidate_roots {
            if instance.payload.is_some() {
                break;
            }
            let echo_backing = instance.echo_senders.get(&root).map_or(0, BTreeSet::len) >= quorum;
            let ready_backing =
                instance.readies.get(&root).map_or(0, BTreeSet::len) >= small_quorum;
            let Some(fragments) = instance.echo_shards.get(&root) else { continue };
            if (echo_backing || ready_backing)
                && fragments.len() >= rs.data_shards()
                && me_is_fresh(instance, &root)
            {
                let shards: Vec<Shard> = fragments.values().cloned().collect();
                match rs.decode(&shards) {
                    Ok(payload) if Self::consistent(rs, &payload, root) => {
                        instance.payload = Some((root, payload));
                    }
                    _ => {
                        instance.bad_roots.insert(root);
                    }
                }
            }
        }

        // READY when we hold the verified payload of a quorum-echoed root,
        // or by f+1 READY amplification.
        if !instance.readied {
            let echo_ready = instance.payload.as_ref().is_some_and(|(root, _)| {
                instance.echo_senders.get(root).map_or(0, BTreeSet::len) >= quorum
            });
            let amplified_root = instance
                .readies
                .iter()
                .find(|(_, who)| who.len() >= small_quorum)
                .map(|(root, _)| *root);
            let root = if echo_ready {
                instance.payload.as_ref().map(|(r, _)| *r)
            } else {
                amplified_root
            };
            if let Some(root) = root {
                instance.readied = true;
                self.tracer.record(TraceEvent::RbcPhase {
                    instance: VertexRef::new(round, source),
                    primitive: RbcPrimitive::Avid,
                    phase: RbcPhase::Commit,
                });
                steps.push(Step::SendAll(AvidMessage {
                    source,
                    round,
                    kind: AvidKind::Ready { root },
                }));
            }
        }

        // DELIVER on 2f+1 READYs for a root whose payload we reconstructed.
        if !instance.delivered {
            if let Some((root, payload)) = &instance.payload {
                if instance.readies.get(root).map_or(0, BTreeSet::len) >= quorum {
                    instance.delivered = true;
                    self.tracer.record(TraceEvent::RbcPhase {
                        instance: VertexRef::new(round, source),
                        primitive: RbcPrimitive::Avid,
                        phase: RbcPhase::Deliver,
                    });
                    steps.push(Step::Deliver(RbcDelivery {
                        source,
                        round,
                        payload: payload.clone(),
                    }));
                }
            }
        }
        steps
    }

    /// The dealer-consistency check: re-encode the reconstructed payload
    /// and verify it commits to exactly `root`.
    fn consistent(rs: ReedSolomon, payload: &[u8], root: Digest) -> bool {
        let shards = rs.encode(payload);
        let leaves: Vec<&[u8]> = shards.iter().map(|s| s.data.as_slice()).collect();
        MerkleTree::build(&leaves).map(|t| t.root()) == Ok(root)
    }
}

impl ReliableBroadcast for AvidRbc {
    type Message = AvidMessage;

    fn new(committee: Committee, me: ProcessId, _seed: u64) -> Self {
        Self {
            committee,
            me,
            rs: ReedSolomon::for_committee(&committee),
            instances: BTreeMap::new(),
            tracer: SharedTracer::disabled(),
        }
    }

    fn committee(&self) -> Committee {
        self.committee
    }

    fn me(&self) -> ProcessId {
        self.me
    }

    fn rbcast(
        &mut self,
        payload: Vec<u8>,
        round: Round,
        _rng: &mut StdRng,
    ) -> Vec<RbcAction<AvidMessage>> {
        self.tracer.record(TraceEvent::RbcPhase {
            instance: VertexRef::new(round, self.me),
            primitive: RbcPrimitive::Avid,
            phase: RbcPhase::Init,
        });
        let shards = self.rs.encode(&payload);
        let leaves: Vec<&[u8]> = shards.iter().map(|s| s.data.as_slice()).collect();
        let tree = MerkleTree::build(&leaves).expect("committee has at least one member");
        let root = tree.root();
        let mut actions = Vec::new();
        let mut own = None;
        for (member, shard) in self.committee.members().zip(shards) {
            let proof = tree.prove(shard.index as usize).expect("index in range");
            let msg = AvidMessage {
                source: self.me,
                round,
                kind: AvidKind::Disperse { root, shard, proof },
            };
            if member == self.me {
                own = Some(msg);
            } else {
                actions.push(RbcAction::Send(member, msg));
            }
        }
        let own = own.expect("self is a committee member");
        actions.extend(self.process(self.me, own));
        actions
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        message: AvidMessage,
        _rng: &mut StdRng,
    ) -> Vec<RbcAction<AvidMessage>> {
        self.process(from, message)
    }

    fn prune(&mut self, before: Round) {
        self.instances.retain(|&(_, r), _| r >= before);
    }

    fn name() -> &'static str {
        "avid"
    }

    fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    fn setup(n: usize) -> (Vec<AvidRbc>, StdRng) {
        let committee = Committee::new(n).unwrap();
        let endpoints = committee.members().map(|p| AvidRbc::new(committee, p, 0)).collect();
        (endpoints, StdRng::seed_from_u64(1))
    }

    fn run_to_quiescence(
        endpoints: &mut [AvidRbc],
        initial: Vec<(ProcessId, RbcAction<AvidMessage>)>,
        rng: &mut StdRng,
    ) -> Vec<Vec<RbcDelivery>> {
        let mut delivered: Vec<Vec<RbcDelivery>> = vec![Vec::new(); endpoints.len()];
        let mut queue: VecDeque<(ProcessId, RbcAction<AvidMessage>)> = initial.into();
        while let Some((actor, action)) = queue.pop_front() {
            match action {
                RbcAction::Send(to, m) => {
                    for a in endpoints[to.as_usize()].on_message(actor, m, rng) {
                        queue.push_back((to, a));
                    }
                }
                RbcAction::Deliver(d) => delivered[actor.as_usize()].push(d),
            }
        }
        delivered
    }

    #[test]
    fn correct_sender_delivers_everywhere() {
        let (mut eps, mut rng) = setup(4);
        let payload: Vec<u8> = (0..200u32).map(|i| (i % 256) as u8).collect();
        let sender = ProcessId::new(2);
        let actions = eps[2].rbcast(payload.clone(), Round::new(3), &mut rng);
        let initial = actions.into_iter().map(|a| (sender, a)).collect();
        let delivered = run_to_quiescence(&mut eps, initial, &mut rng);
        for (i, d) in delivered.iter().enumerate() {
            assert_eq!(d.len(), 1, "process {i}");
            assert_eq!(d[0].payload, payload);
            assert_eq!(d[0].source, sender);
        }
    }

    #[test]
    fn larger_committee_roundtrip() {
        let (mut eps, mut rng) = setup(7);
        let payload = vec![7u8; 777];
        let actions = eps[0].rbcast(payload.clone(), Round::new(1), &mut rng);
        let initial = actions.into_iter().map(|a| (ProcessId::new(0), a)).collect();
        let delivered = run_to_quiescence(&mut eps, initial, &mut rng);
        assert!(delivered.iter().all(|d| d.len() == 1 && d[0].payload == payload));
    }

    #[test]
    fn echo_bytes_are_a_fraction_of_payload() {
        // The whole point of AVID: each process's echo carries |M|/(f+1)
        // + O(log n) bytes, not |M|.
        let (mut eps, mut rng) = setup(10);
        let payload = vec![9u8; 9000];
        let actions = eps[0].rbcast(payload.clone(), Round::new(1), &mut rng);
        let disperse_len = actions
            .iter()
            .filter_map(|a| match a {
                RbcAction::Send(_, m) => Some(m.encoded_len()),
                _ => None,
            })
            .max()
            .unwrap();
        // k = f + 1 = 4, so a fragment is ~2250 bytes plus Merkle overhead.
        assert!(disperse_len < payload.len() / 2, "disperse message {disperse_len} bytes");
    }

    #[test]
    fn tampered_fragment_is_ignored() {
        let (mut eps, mut rng) = setup(4);
        let actions = eps[0].rbcast(vec![1u8; 64], Round::new(1), &mut rng);
        // Find the disperse destined to p1 and corrupt its shard.
        let (to, mut msg) = actions
            .iter()
            .find_map(|a| match a {
                RbcAction::Send(to, m) if *to == ProcessId::new(1) => Some((*to, m.clone())),
                _ => None,
            })
            .unwrap();
        if let AvidKind::Disperse { ref mut shard, .. } = msg.kind {
            shard.data[0] ^= 0xff;
        }
        let out = eps[to.as_usize()].on_message(ProcessId::new(0), msg, &mut rng);
        assert!(out.is_empty(), "corrupted disperse must be dropped");
    }

    #[test]
    fn echo_of_foreign_fragment_is_ignored() {
        let (mut eps, mut rng) = setup(4);
        let actions = eps[0].rbcast(vec![2u8; 64], Round::new(1), &mut rng);
        // p1's legitimate disperse, replayed by p2 as *its* echo.
        let msg = actions
            .iter()
            .find_map(|a| match a {
                RbcAction::Send(to, m) if *to == ProcessId::new(1) => Some(m.clone()),
                _ => None,
            })
            .unwrap();
        let echo = if let AvidKind::Disperse { root, shard, proof } = msg.kind {
            AvidMessage {
                source: ProcessId::new(0),
                round: Round::new(1),
                kind: AvidKind::Echo { root, shard, proof },
            }
        } else {
            unreachable!()
        };
        let out = eps[3].on_message(ProcessId::new(2), echo, &mut rng);
        assert!(out.is_empty(), "a process may only echo its own fragment");
    }

    #[test]
    fn inconsistent_dealer_is_not_delivered() {
        // A Byzantine dealer builds a Merkle root over garbage fragments
        // that do not come from one RS codeword; reconstruction fails the
        // re-encode check everywhere, so nobody delivers.
        let committee = Committee::new(4).unwrap();
        let (mut eps, mut rng) = setup(4);
        let rs = ReedSolomon::for_committee(&committee);
        let mut shards = rs.encode(&[3u8; 100]);
        // Corrupt one fragment *before* committing, so proofs verify but
        // the codeword is inconsistent.
        shards[2].data[0] ^= 0x55;
        let leaves: Vec<&[u8]> = shards.iter().map(|s| s.data.as_slice()).collect();
        let tree = MerkleTree::build(&leaves).unwrap();
        let root = tree.root();
        let mut initial = Vec::new();
        for (member, shard) in committee.members().zip(shards) {
            let proof = tree.prove(shard.index as usize).unwrap();
            let msg = AvidMessage {
                source: ProcessId::new(0),
                round: Round::new(1),
                kind: AvidKind::Disperse { root, shard, proof },
            };
            initial.push((member, RbcAction::Send(member, msg)));
        }
        // Route the disperses as if sent by p0.
        let mut queue: VecDeque<(ProcessId, RbcAction<AvidMessage>)> = VecDeque::new();
        for (to, action) in initial {
            if let RbcAction::Send(_, m) = action {
                for a in eps[to.as_usize()].on_message(ProcessId::new(0), m, &mut rng) {
                    queue.push_back((to, a));
                }
            }
        }
        let mut delivered = 0;
        while let Some((actor, action)) = queue.pop_front() {
            match action {
                RbcAction::Send(to, m) => {
                    for a in eps[to.as_usize()].on_message(actor, m, &mut rng) {
                        queue.push_back((to, a));
                    }
                }
                RbcAction::Deliver(_) => delivered += 1,
            }
        }
        assert_eq!(delivered, 0, "inconsistent dispersal must never deliver");
    }

    #[test]
    fn message_codec_roundtrip() {
        let committee = Committee::new(4).unwrap();
        let rs = ReedSolomon::for_committee(&committee);
        let shards = rs.encode(b"codec");
        let leaves: Vec<&[u8]> = shards.iter().map(|s| s.data.as_slice()).collect();
        let tree = MerkleTree::build(&leaves).unwrap();
        let msgs = vec![
            AvidMessage {
                source: ProcessId::new(1),
                round: Round::new(2),
                kind: AvidKind::Disperse {
                    root: tree.root(),
                    shard: shards[0].clone(),
                    proof: tree.prove(0).unwrap(),
                },
            },
            AvidMessage {
                source: ProcessId::new(1),
                round: Round::new(2),
                kind: AvidKind::Echo {
                    root: tree.root(),
                    shard: shards[1].clone(),
                    proof: tree.prove(1).unwrap(),
                },
            },
            AvidMessage {
                source: ProcessId::new(1),
                round: Round::new(2),
                kind: AvidKind::Ready { root: tree.root() },
            },
        ];
        for msg in msgs {
            let bytes = msg.to_bytes();
            assert_eq!(bytes.len(), msg.encoded_len());
            assert_eq!(AvidMessage::from_bytes(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn prune_discards_old_instances() {
        let (mut eps, mut rng) = setup(4);
        let _ = eps[0].rbcast(vec![1], Round::new(1), &mut rng);
        let _ = eps[0].rbcast(vec![2], Round::new(8), &mut rng);
        assert_eq!(eps[0].instance_count(), 2);
        eps[0].prune(Round::new(2));
        assert_eq!(eps[0].instance_count(), 1);
    }
}
