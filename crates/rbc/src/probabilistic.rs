//! Probabilistic (sample-based) reliable broadcast, modeled on Guerraoui
//! et al.'s *Scalable Byzantine Reliable Broadcast* (the paper's reference
//! \[25\]).
//!
//! Every per-instance interaction uses random samples of size
//! `s = O(log n)` instead of all-to-all traffic, in the three stages of
//! the original protocol:
//!
//! * **Murmur** (gossip): the payload floods along random gossip samples —
//!   each process forwards once, so the payload costs `O(n·s·|M|)` bits
//!   total instead of `O(n²·|M|)`.
//! * **Sieve** (echo): each process *subscribes* to a random echo sample;
//!   subscribed processes send it their (digest-sized) echoes directly.
//!   Enough matching echoes from the sample rule out equivocation whp.
//! * **Contagion** (ready/deliver): likewise with ready subscriptions —
//!   an amplification threshold (a few sampled readies → issue your own)
//!   and a higher delivery threshold over an independent delivery sample.
//!
//! Subscriptions are what make the thresholds concentrate: once every
//! correct process has echoed, a process hears from *all* correct members
//! of its own sample (no push-sampling variance), so the residual failure
//! probability `ε` comes only from samples unluckily packed with faulty
//! processes. All guarantees hold whp — the Table 1 row
//! "DAG-Rider + \[25\]": amortized `O(n log n)` at `(1-ε)` liveness.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dagrider_crypto::{sha256, Digest};
use dagrider_trace::{RbcPhase, RbcPrimitive, SharedTracer, TraceEvent};
use dagrider_types::{Committee, Decode, DecodeError, Encode, ProcessId, Round, VertexRef};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::api::{RbcAction, RbcDelivery, ReliableBroadcast};

/// Tuning for the sample-based broadcast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbConfig {
    /// Sample size multiplier: `s = clamp(ceil(factor · ln n), 3, n-1)`.
    pub sample_factor: f64,
    /// Fraction of the echo sample that must echo one digest to turn
    /// ready.
    pub echo_threshold: f64,
    /// Fraction of the ready sample that triggers ready amplification.
    pub ready_threshold: f64,
    /// Fraction of the delivery sample required to deliver.
    pub deliver_threshold: f64,
}

impl Default for ProbConfig {
    fn default() -> Self {
        Self {
            sample_factor: 3.0,
            echo_threshold: 0.55,
            ready_threshold: 0.3,
            deliver_threshold: 0.6,
        }
    }
}

impl ProbConfig {
    /// The sample size for an `n`-process committee.
    pub fn sample_size(&self, n: usize) -> usize {
        let s = (self.sample_factor * (n as f64).ln()).ceil() as usize;
        s.clamp(3, n.saturating_sub(1).max(1))
    }
}

/// The phase of a [`ProbMessage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbKind {
    /// Gossiped payload (murmur).
    Gossip(Vec<u8>),
    /// Subscription request: "send me your echoes and/or readies for this
    /// instance" (sieve/contagion sampling).
    Subscribe {
        /// Subscribe to the target's echo.
        echo: bool,
        /// Subscribe to the target's ready.
        ready: bool,
    },
    /// Digest echo, sent to echo-subscribers (sieve).
    Echo(Digest),
    /// Delivery commitment, sent to ready-subscribers (contagion).
    Ready(Digest),
}

/// A probabilistic-broadcast message, tagged with its instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbMessage {
    /// The broadcasting process of the instance.
    pub source: ProcessId,
    /// The instance's round number.
    pub round: Round,
    /// The phase payload.
    pub kind: ProbKind,
}

impl Encode for ProbMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.source.encode(buf);
        self.round.encode(buf);
        match &self.kind {
            ProbKind::Gossip(p) => {
                0u8.encode(buf);
                p.encode(buf);
            }
            ProbKind::Subscribe { echo, ready } => {
                1u8.encode(buf);
                echo.encode(buf);
                ready.encode(buf);
            }
            ProbKind::Echo(d) => {
                2u8.encode(buf);
                d.encode(buf);
            }
            ProbKind::Ready(d) => {
                3u8.encode(buf);
                d.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        let kind_len = match &self.kind {
            ProbKind::Gossip(p) => p.encoded_len(),
            ProbKind::Subscribe { .. } => 2,
            ProbKind::Echo(_) | ProbKind::Ready(_) => 32,
        };
        self.source.encoded_len() + self.round.encoded_len() + 1 + kind_len
    }
}

impl Decode for ProbMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let source = ProcessId::decode(buf)?;
        let round = Round::decode(buf)?;
        let tag = u8::decode(buf)?;
        let kind = match tag {
            0 => ProbKind::Gossip(Vec::<u8>::decode(buf)?),
            1 => ProbKind::Subscribe { echo: bool::decode(buf)?, ready: bool::decode(buf)? },
            2 => ProbKind::Echo(Digest::decode(buf)?),
            3 => ProbKind::Ready(Digest::decode(buf)?),
            _ => return Err(DecodeError::Invalid("unknown probabilistic phase tag")),
        };
        Ok(Self { source, round, kind })
    }
}

#[derive(Debug, Default)]
struct Instance {
    initialized: bool,
    gossiped: bool,
    /// The digest we echoed, if any (first payload wins).
    echoed: Option<Digest>,
    readied: Option<Digest>,
    delivered: bool,
    payload: Option<Vec<u8>>,
    payload_digest: Option<Digest>,
    /// Who we sample (we subscribed to them).
    echo_sample: Vec<ProcessId>,
    ready_sample: Vec<ProcessId>,
    delivery_sample: Vec<ProcessId>,
    /// Who subscribed to us.
    echo_subscribers: BTreeSet<ProcessId>,
    ready_subscribers: BTreeSet<ProcessId>,
    /// digest → sampled processes whose echo/ready we received.
    echoes: BTreeMap<Digest, BTreeSet<ProcessId>>,
    readies: BTreeMap<Digest, BTreeSet<ProcessId>>,
}

/// Probabilistic reliable broadcast endpoint. See the module docs above.
#[derive(Debug)]
pub struct ProbabilisticRbc {
    committee: Committee,
    me: ProcessId,
    config: ProbConfig,
    sample_size: usize,
    instances: BTreeMap<(ProcessId, Round), Instance>,
    tracer: SharedTracer,
}

enum Step {
    Send(ProcessId, ProbMessage),
    SendSample(ProbMessage),
    Deliver(RbcDelivery),
}

impl ProbabilisticRbc {
    /// Creates an endpoint with custom thresholds.
    pub fn with_config(committee: Committee, me: ProcessId, config: ProbConfig) -> Self {
        let sample_size = config.sample_size(committee.n());
        Self {
            committee,
            me,
            config,
            sample_size,
            instances: BTreeMap::new(),
            tracer: SharedTracer::disabled(),
        }
    }

    /// The sample size `s` in use.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    fn threshold(&self, fraction: f64) -> usize {
        ((fraction * self.sample_size as f64).ceil() as usize).max(1)
    }

    /// A fresh random sample of `s` *other* processes.
    fn sample(&self, rng: &mut StdRng) -> Vec<ProcessId> {
        let n = self.committee.n();
        let mut picked = BTreeSet::new();
        let want = self.sample_size.min(n - 1);
        while picked.len() < want {
            let candidate = ProcessId::new(rng.random_range(0..n as u32));
            if candidate != self.me {
                picked.insert(candidate);
            }
        }
        picked.into_iter().collect()
    }

    /// First-touch setup for an instance: draw the three samples and
    /// subscribe to them (one combined message per distinct target).
    fn ensure_instance(
        &mut self,
        key: (ProcessId, Round),
        rng: &mut StdRng,
        steps: &mut Vec<Step>,
    ) {
        if self.instances.get(&key).is_some_and(|i| i.initialized) {
            return;
        }
        let echo_sample = self.sample(rng);
        let ready_sample = self.sample(rng);
        let delivery_sample = self.sample(rng);
        let mut wants: BTreeMap<ProcessId, (bool, bool)> = BTreeMap::new();
        for &p in &echo_sample {
            wants.entry(p).or_default().0 = true;
        }
        for &p in ready_sample.iter().chain(&delivery_sample) {
            wants.entry(p).or_default().1 = true;
        }
        for (p, (echo, ready)) in wants {
            steps.push(Step::Send(
                p,
                ProbMessage {
                    source: key.0,
                    round: key.1,
                    kind: ProbKind::Subscribe { echo, ready },
                },
            ));
        }
        let instance = self.instances.entry(key).or_default();
        instance.initialized = true;
        instance.echo_sample = echo_sample;
        instance.ready_sample = ready_sample;
        instance.delivery_sample = delivery_sample;
    }

    fn process(
        &mut self,
        from: ProcessId,
        message: ProbMessage,
        rng: &mut StdRng,
    ) -> Vec<RbcAction<ProbMessage>> {
        let mut actions = Vec::new();
        let mut work = VecDeque::from([(from, message)]);
        while let Some((sender, msg)) = work.pop_front() {
            let mut steps = Vec::new();
            self.ensure_instance((msg.source, msg.round), rng, &mut steps);
            steps.extend(self.handle(sender, msg));
            for out in steps {
                match out {
                    Step::Send(to, m) if to == self.me => work.push_back((self.me, m)),
                    Step::Send(to, m) => actions.push(RbcAction::Send(to, m)),
                    Step::SendSample(m) => {
                        work.push_back((self.me, m.clone()));
                        for to in self.sample(rng) {
                            actions.push(RbcAction::Send(to, m.clone()));
                        }
                    }
                    Step::Deliver(d) => actions.push(RbcAction::Deliver(d)),
                }
            }
        }
        actions
    }

    fn handle(&mut self, from: ProcessId, msg: ProbMessage) -> Vec<Step> {
        let echo_threshold = self.threshold(self.config.echo_threshold);
        let ready_threshold = self.threshold(self.config.ready_threshold);
        let deliver_threshold = self.threshold(self.config.deliver_threshold);
        let key = (msg.source, msg.round);
        let source = msg.source;
        let round = msg.round;
        let instance = self.instances.get_mut(&key).expect("ensured by caller");
        let mut steps = Vec::new();
        match msg.kind {
            ProbKind::Gossip(payload) => {
                if instance.payload.is_none() {
                    let digest = sha256(&payload);
                    instance.payload = Some(payload.clone());
                    instance.payload_digest = Some(digest);
                    if !instance.gossiped {
                        instance.gossiped = true;
                        steps.push(Step::SendSample(ProbMessage {
                            source,
                            round,
                            kind: ProbKind::Gossip(payload),
                        }));
                    }
                    if instance.echoed.is_none() {
                        instance.echoed = Some(digest);
                        self.tracer.record(TraceEvent::RbcPhase {
                            instance: VertexRef::new(round, source),
                            primitive: RbcPrimitive::Probabilistic,
                            phase: RbcPhase::Witness,
                        });
                        let echo = ProbMessage { source, round, kind: ProbKind::Echo(digest) };
                        for &sub in &instance.echo_subscribers {
                            steps.push(Step::Send(sub, echo.clone()));
                        }
                    }
                }
            }
            ProbKind::Subscribe { echo, ready } => {
                if echo {
                    instance.echo_subscribers.insert(from);
                    if let Some(digest) = instance.echoed {
                        steps.push(Step::Send(
                            from,
                            ProbMessage { source, round, kind: ProbKind::Echo(digest) },
                        ));
                    }
                }
                if ready {
                    instance.ready_subscribers.insert(from);
                    if let Some(digest) = instance.readied {
                        steps.push(Step::Send(
                            from,
                            ProbMessage { source, round, kind: ProbKind::Ready(digest) },
                        ));
                    }
                }
            }
            ProbKind::Echo(digest) => {
                // Only echoes from our echo sample count toward the
                // sieve threshold.
                if instance.echo_sample.contains(&from) {
                    instance.echoes.entry(digest).or_default().insert(from);
                    if instance.echoes[&digest].len() >= echo_threshold {
                        let was_ready = instance.readied.is_some();
                        Self::turn_ready(instance, source, round, digest, &mut steps);
                        if !was_ready && instance.readied.is_some() {
                            self.tracer.record(TraceEvent::RbcPhase {
                                instance: VertexRef::new(round, source),
                                primitive: RbcPrimitive::Probabilistic,
                                phase: RbcPhase::Commit,
                            });
                        }
                    }
                }
            }
            ProbKind::Ready(digest) => {
                let in_ready = instance.ready_sample.contains(&from);
                let in_delivery = instance.delivery_sample.contains(&from);
                if in_ready || in_delivery {
                    instance.readies.entry(digest).or_default().insert(from);
                    let got = &instance.readies[&digest];
                    // Contagion amplification over the ready sample.
                    let ready_count =
                        instance.ready_sample.iter().filter(|p| got.contains(p)).count();
                    if ready_count >= ready_threshold {
                        let was_ready = instance.readied.is_some();
                        Self::turn_ready(instance, source, round, digest, &mut steps);
                        if !was_ready && instance.readied.is_some() {
                            self.tracer.record(TraceEvent::RbcPhase {
                                instance: VertexRef::new(round, source),
                                primitive: RbcPrimitive::Probabilistic,
                                phase: RbcPhase::Commit,
                            });
                        }
                    }
                }
            }
        }
        // Delivery check after every transition: enough delivery-sample
        // readies for the digest of a payload we hold.
        let instance = self.instances.get_mut(&key).expect("exists");
        if !instance.delivered {
            if let (Some(payload), Some(digest)) = (&instance.payload, instance.payload_digest) {
                if let Some(got) = instance.readies.get(&digest) {
                    let delivery_count =
                        instance.delivery_sample.iter().filter(|p| got.contains(p)).count();
                    if delivery_count >= deliver_threshold {
                        instance.delivered = true;
                        self.tracer.record(TraceEvent::RbcPhase {
                            instance: VertexRef::new(round, source),
                            primitive: RbcPrimitive::Probabilistic,
                            phase: RbcPhase::Deliver,
                        });
                        steps.push(Step::Deliver(RbcDelivery {
                            source,
                            round,
                            payload: payload.clone(),
                        }));
                    }
                }
            }
        }
        steps
    }

    /// Issues our ready for `digest` (once) to all ready-subscribers.
    fn turn_ready(
        instance: &mut Instance,
        source: ProcessId,
        round: Round,
        digest: Digest,
        steps: &mut Vec<Step>,
    ) {
        if instance.readied.is_some() {
            return;
        }
        instance.readied = Some(digest);
        let ready = ProbMessage { source, round, kind: ProbKind::Ready(digest) };
        for &sub in &instance.ready_subscribers {
            steps.push(Step::Send(sub, ready.clone()));
        }
    }
}

impl ReliableBroadcast for ProbabilisticRbc {
    type Message = ProbMessage;

    fn new(committee: Committee, me: ProcessId, _seed: u64) -> Self {
        Self::with_config(committee, me, ProbConfig::default())
    }

    fn committee(&self) -> Committee {
        self.committee
    }

    fn me(&self) -> ProcessId {
        self.me
    }

    fn rbcast(
        &mut self,
        payload: Vec<u8>,
        round: Round,
        rng: &mut StdRng,
    ) -> Vec<RbcAction<ProbMessage>> {
        self.tracer.record(TraceEvent::RbcPhase {
            instance: VertexRef::new(round, self.me),
            primitive: RbcPrimitive::Probabilistic,
            phase: RbcPhase::Init,
        });
        let gossip = ProbMessage { source: self.me, round, kind: ProbKind::Gossip(payload) };
        self.process(self.me, gossip, rng)
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        message: ProbMessage,
        rng: &mut StdRng,
    ) -> Vec<RbcAction<ProbMessage>> {
        self.process(from, message, rng)
    }

    fn prune(&mut self, before: Round) {
        self.instances.retain(|&(_, r), _| r >= before);
    }

    fn name() -> &'static str {
        "probabilistic"
    }

    fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    fn setup(n: usize, seed: u64) -> (Vec<ProbabilisticRbc>, StdRng) {
        let committee = Committee::new(n).unwrap();
        let endpoints =
            committee.members().map(|p| ProbabilisticRbc::new(committee, p, 0)).collect();
        (endpoints, StdRng::seed_from_u64(seed))
    }

    fn run_to_quiescence(
        endpoints: &mut [ProbabilisticRbc],
        initial: Vec<(ProcessId, RbcAction<ProbMessage>)>,
        rng: &mut StdRng,
    ) -> Vec<Vec<RbcDelivery>> {
        let mut delivered: Vec<Vec<RbcDelivery>> = vec![Vec::new(); endpoints.len()];
        let mut queue: VecDeque<(ProcessId, RbcAction<ProbMessage>)> = initial.into();
        while let Some((actor, action)) = queue.pop_front() {
            match action {
                RbcAction::Send(to, m) => {
                    for a in endpoints[to.as_usize()].on_message(actor, m, rng) {
                        queue.push_back((to, a));
                    }
                }
                RbcAction::Deliver(d) => delivered[actor.as_usize()].push(d),
            }
        }
        delivered
    }

    #[test]
    fn broadcast_reaches_everyone() {
        // Subscriptions remove the push-sampling variance, so in a
        // fault-free synchronous drain every process delivers.
        for n in [4usize, 7, 13, 19] {
            for seed in [1u64, 2, 3] {
                let (mut eps, mut rng) = setup(n, seed);
                let actions = eps[0].rbcast(b"gossip".to_vec(), Round::new(1), &mut rng);
                let initial = actions.into_iter().map(|a| (ProcessId::new(0), a)).collect();
                let delivered = run_to_quiescence(&mut eps, initial, &mut rng);
                let count = delivered.iter().filter(|d| !d.is_empty()).count();
                assert_eq!(count, n, "n={n} seed={seed}: only {count} delivered");
                for d in &delivered {
                    assert_eq!(d[0].payload, b"gossip");
                }
            }
        }
    }

    #[test]
    fn integrity_no_double_delivery() {
        let (mut eps, mut rng) = setup(7, 7);
        let a1 = eps[0].rbcast(b"first".to_vec(), Round::new(1), &mut rng);
        let a2 = eps[0].rbcast(b"second".to_vec(), Round::new(1), &mut rng);
        let initial = a1.into_iter().chain(a2).map(|a| (ProcessId::new(0), a)).collect();
        let delivered = run_to_quiescence(&mut eps, initial, &mut rng);
        for d in &delivered {
            assert!(d.len() <= 1, "double delivery: {d:?}");
        }
    }

    #[test]
    fn sample_size_scales_logarithmically() {
        let config = ProbConfig::default();
        assert!(config.sample_size(4) <= 4);
        let s16 = config.sample_size(16);
        assert!(s16 > 3 && s16 < 16);
        let s100 = config.sample_size(100);
        assert!(s100 < 20, "s(100) = {s100} should be O(log n)");
    }

    #[test]
    fn sample_excludes_self_and_has_no_duplicates() {
        let committee = Committee::new(13).unwrap();
        let rbc = ProbabilisticRbc::new(committee, ProcessId::new(5), 0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let sample = rbc.sample(&mut rng);
            assert_eq!(sample.len(), rbc.sample_size().min(12));
            assert!(!sample.contains(&ProcessId::new(5)));
            let unique: BTreeSet<_> = sample.iter().collect();
            assert_eq!(unique.len(), sample.len());
        }
    }

    #[test]
    fn message_codec_roundtrip() {
        let digest = sha256(b"x");
        for kind in [
            ProbKind::Gossip(vec![1, 2, 3]),
            ProbKind::Subscribe { echo: true, ready: false },
            ProbKind::Echo(digest),
            ProbKind::Ready(digest),
        ] {
            let msg = ProbMessage { source: ProcessId::new(2), round: Round::new(4), kind };
            let bytes = msg.to_bytes();
            assert_eq!(bytes.len(), msg.encoded_len());
            assert_eq!(ProbMessage::from_bytes(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn non_sampled_echoes_do_not_count() {
        // A flood of echoes from processes outside my echo sample must
        // not push me past the sieve threshold.
        let committee = Committee::new(31).unwrap();
        let me = ProcessId::new(0);
        let mut rbc = ProbabilisticRbc::new(committee, me, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let digest = sha256(b"attack");
        // Initialize the instance so samples exist.
        let mut steps = Vec::new();
        rbc.ensure_instance((ProcessId::new(1), Round::new(1)), &mut rng, &mut steps);
        let sample = rbc.instances[&(ProcessId::new(1), Round::new(1))].echo_sample.clone();
        let mut sent_ready = false;
        for p in committee.members().filter(|p| *p != me && !sample.contains(p)) {
            let msg = ProbMessage {
                source: ProcessId::new(1),
                round: Round::new(1),
                kind: ProbKind::Echo(digest),
            };
            for a in rbc.on_message(p, msg, &mut rng) {
                if matches!(a, RbcAction::Send(_, ProbMessage { kind: ProbKind::Ready(_), .. })) {
                    sent_ready = true;
                }
            }
        }
        assert!(!sent_ready, "echoes outside the sample must not trigger ready");
    }

    #[test]
    fn communication_is_subquadratic_in_messages() {
        // Count wire messages for one broadcast at n = 100: O(n·s) with
        // s = ceil(3 ln 100) = 14. The constant is ~6.5 (subscriptions ≈
        // 2n·s, gossip n·s, echoes n·s, readies 2n·s), so assert < 10·n·s
        // — which also sits below n² = 10000 and *shrinks* relative to n²
        // as n grows.
        let n = 100;
        let (mut eps, mut rng) = setup(n, 11);
        let mut wire_messages = 0usize;
        let actions = eps[0].rbcast(vec![0u8; 16], Round::new(1), &mut rng);
        let mut queue: VecDeque<(ProcessId, RbcAction<ProbMessage>)> =
            actions.into_iter().map(|a| (ProcessId::new(0), a)).collect();
        while let Some((actor, action)) = queue.pop_front() {
            match action {
                RbcAction::Send(to, m) => {
                    wire_messages += 1;
                    for a in eps[to.as_usize()].on_message(actor, m, &mut rng) {
                        queue.push_back((to, a));
                    }
                }
                RbcAction::Deliver(_) => {}
            }
        }
        let s = eps[0].sample_size();
        assert!(
            wire_messages < 10 * n * s,
            "expected O(n·s) messages, got {wire_messages} vs 10·n·s = {}",
            10 * n * s
        );
    }
}
