//! Bracha's classic reliable broadcast (the paper's reference \[11\]).
//!
//! Three phases per instance — `INIT`, `ECHO`, `READY` — all carrying the
//! full payload, giving the textbook `O(n²·M)` bits per broadcast that
//! yields Table 1's "DAG-Rider + \[11\]: amortized `O(n²)`" row:
//!
//! * the sender `INIT`s its payload to everyone;
//! * on the first `INIT` of an instance, a process `ECHO`s the payload;
//! * on `2f+1` matching `ECHO`s (or `f+1` matching `READY`s — the
//!   amplification step), a process sends `READY`;
//! * on `2f+1` matching `READY`s it delivers.
//!
//! Quorum intersection makes equivocation unwinnable: two different
//! payloads for one `(source, round)` can never both gather `2f+1` echoes,
//! because an honest process echoes only the first `INIT` it sees.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dagrider_crypto::{sha256, Digest};
use dagrider_trace::{RbcPhase, RbcPrimitive, SharedTracer, TraceEvent};
use dagrider_types::{Committee, Decode, DecodeError, Encode, ProcessId, Round, VertexRef};
use rand::rngs::StdRng;

use crate::api::{RbcAction, RbcDelivery, ReliableBroadcast};

/// The phase of a [`BrachaMessage`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BrachaKind {
    /// The sender's initial payload dissemination.
    Init(Vec<u8>),
    /// A witness echo of the payload.
    Echo(Vec<u8>),
    /// A commitment to deliver the payload.
    Ready(Vec<u8>),
}

impl BrachaKind {
    fn payload(&self) -> &[u8] {
        match self {
            BrachaKind::Init(p) | BrachaKind::Echo(p) | BrachaKind::Ready(p) => p,
        }
    }
}

/// A Bracha protocol message, tagged with its instance `(source, round)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BrachaMessage {
    /// The broadcasting process of the instance.
    pub source: ProcessId,
    /// The instance's round number.
    pub round: Round,
    /// The phase and payload.
    pub kind: BrachaKind,
}

impl Encode for BrachaMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.source.encode(buf);
        self.round.encode(buf);
        let (tag, payload): (u8, &Vec<u8>) = match &self.kind {
            BrachaKind::Init(p) => (0, p),
            BrachaKind::Echo(p) => (1, p),
            BrachaKind::Ready(p) => (2, p),
        };
        tag.encode(buf);
        dagrider_types::encode_bytes(payload, buf);
    }

    fn encoded_len(&self) -> usize {
        let payload = match &self.kind {
            BrachaKind::Init(p) | BrachaKind::Echo(p) | BrachaKind::Ready(p) => p,
        };
        self.source.encoded_len()
            + self.round.encoded_len()
            + 1
            + dagrider_types::bytes_encoded_len(payload)
    }
}

impl Decode for BrachaMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let source = ProcessId::decode(buf)?;
        let round = Round::decode(buf)?;
        let tag = u8::decode(buf)?;
        let payload = dagrider_types::decode_bytes(buf)?;
        let kind = match tag {
            0 => BrachaKind::Init(payload),
            1 => BrachaKind::Echo(payload),
            2 => BrachaKind::Ready(payload),
            _ => return Err(DecodeError::Invalid("unknown bracha phase tag")),
        };
        Ok(Self { source, round, kind })
    }
}

/// Per-instance protocol state.
#[derive(Debug, Default)]
struct Instance {
    echoed: bool,
    readied: bool,
    delivered: bool,
    /// payload digest → processes that echoed it (payload kept aside).
    echoes: BTreeMap<Digest, BTreeSet<ProcessId>>,
    readies: BTreeMap<Digest, BTreeSet<ProcessId>>,
    payloads: BTreeMap<Digest, Vec<u8>>,
}

/// Bracha reliable broadcast endpoint. See the module docs above.
#[derive(Debug)]
pub struct BrachaRbc {
    committee: Committee,
    me: ProcessId,
    instances: BTreeMap<(ProcessId, Round), Instance>,
    tracer: SharedTracer,
}

impl BrachaRbc {
    /// Number of live instances (diagnostics).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Runs the state machine on `(from, message)` plus any self-addressed
    /// follow-ups, accumulating wire sends and deliveries. `digest`, when
    /// present, is the pre-computed SHA-256 of the message's payload (from
    /// a driver that hashed it off-thread); follow-ups thread the digest
    /// along so one payload is hashed at most once per instance.
    fn process(
        &mut self,
        from: ProcessId,
        message: BrachaMessage,
        digest: Option<Digest>,
    ) -> Vec<RbcAction<BrachaMessage>> {
        let mut actions = Vec::new();
        let mut work = VecDeque::from([(from, message, digest)]);
        while let Some((sender, msg, digest)) = work.pop_front() {
            for out in self.handle(sender, msg, digest) {
                match out {
                    Step::SendAll(m, d) => {
                        // Route to self immediately; wire the rest.
                        work.push_back((self.me, m.clone(), d));
                        for to in self.committee.others(self.me) {
                            actions.push(RbcAction::Send(to, m.clone()));
                        }
                    }
                    Step::Deliver(d) => actions.push(RbcAction::Deliver(d)),
                }
            }
        }
        actions
    }

    /// One transition of the instance state machine.
    fn handle(&mut self, from: ProcessId, msg: BrachaMessage, digest: Option<Digest>) -> Vec<Step> {
        // An INIT is only meaningful from the claimed source itself — the
        // network authenticates senders (§2), so spoofed INITs are dropped.
        if matches!(msg.kind, BrachaKind::Init(_)) && from != msg.source {
            return Vec::new();
        }
        let quorum = self.committee.quorum();
        let small_quorum = self.committee.small_quorum();
        let key = (msg.source, msg.round);
        let slot = VertexRef::new(msg.round, msg.source);
        let instance = self.instances.entry(key).or_default();
        let mut steps = Vec::new();
        match msg.kind {
            BrachaKind::Init(payload) => {
                // The INIT path never needs the digest itself; the echo
                // inherits whatever hint the caller supplied.
                if !instance.echoed {
                    instance.echoed = true;
                    self.tracer.record(TraceEvent::RbcPhase {
                        instance: slot,
                        primitive: RbcPrimitive::Bracha,
                        phase: RbcPhase::Witness,
                    });
                    steps.push(Step::SendAll(
                        BrachaMessage {
                            source: msg.source,
                            round: msg.round,
                            kind: BrachaKind::Echo(payload),
                        },
                        digest,
                    ));
                }
            }
            BrachaKind::Echo(payload) => {
                let digest = digest.unwrap_or_else(|| resolve_digest(&instance.payloads, &payload));
                instance.payloads.entry(digest).or_insert(payload);
                instance.echoes.entry(digest).or_default().insert(from);
                if instance.echoes[&digest].len() >= quorum && !instance.readied {
                    instance.readied = true;
                    self.tracer.record(TraceEvent::RbcPhase {
                        instance: slot,
                        primitive: RbcPrimitive::Bracha,
                        phase: RbcPhase::Commit,
                    });
                    let payload = instance.payloads[&digest].clone();
                    steps.push(Step::SendAll(
                        BrachaMessage {
                            source: msg.source,
                            round: msg.round,
                            kind: BrachaKind::Ready(payload),
                        },
                        Some(digest),
                    ));
                }
            }
            BrachaKind::Ready(payload) => {
                let digest = digest.unwrap_or_else(|| resolve_digest(&instance.payloads, &payload));
                instance.payloads.entry(digest).or_insert(payload);
                instance.readies.entry(digest).or_default().insert(from);
                let count = instance.readies[&digest].len();
                if count >= small_quorum && !instance.readied {
                    instance.readied = true;
                    self.tracer.record(TraceEvent::RbcPhase {
                        instance: slot,
                        primitive: RbcPrimitive::Bracha,
                        phase: RbcPhase::Commit,
                    });
                    let payload = instance.payloads[&digest].clone();
                    steps.push(Step::SendAll(
                        BrachaMessage {
                            source: msg.source,
                            round: msg.round,
                            kind: BrachaKind::Ready(payload),
                        },
                        Some(digest),
                    ));
                }
                if count >= quorum && !instance.delivered {
                    instance.delivered = true;
                    self.tracer.record(TraceEvent::RbcPhase {
                        instance: slot,
                        primitive: RbcPrimitive::Bracha,
                        phase: RbcPhase::Deliver,
                    });
                    steps.push(Step::Deliver(RbcDelivery {
                        source: msg.source,
                        round: msg.round,
                        payload: instance.payloads[&digest].clone(),
                    }));
                }
            }
        }
        steps
    }
}

/// The digest of `payload`, recovered by byte comparison against payloads
/// this instance has already hashed (the overwhelmingly common case — all
/// honest copies of one broadcast carry identical bytes, and a memcmp is
/// far cheaper than SHA-256), falling back to hashing for bytes never seen.
fn resolve_digest(known: &BTreeMap<Digest, Vec<u8>>, payload: &[u8]) -> Digest {
    known
        .iter()
        .find_map(|(d, p)| (p.as_slice() == payload).then_some(*d))
        .unwrap_or_else(|| sha256(payload))
}

enum Step {
    SendAll(BrachaMessage, Option<Digest>),
    Deliver(RbcDelivery),
}

impl ReliableBroadcast for BrachaRbc {
    type Message = BrachaMessage;

    fn new(committee: Committee, me: ProcessId, _seed: u64) -> Self {
        Self { committee, me, instances: BTreeMap::new(), tracer: SharedTracer::disabled() }
    }

    fn committee(&self) -> Committee {
        self.committee
    }

    fn me(&self) -> ProcessId {
        self.me
    }

    fn rbcast(
        &mut self,
        payload: Vec<u8>,
        round: Round,
        _rng: &mut StdRng,
    ) -> Vec<RbcAction<BrachaMessage>> {
        self.tracer.record(TraceEvent::RbcPhase {
            instance: VertexRef::new(round, self.me),
            primitive: RbcPrimitive::Bracha,
            phase: RbcPhase::Init,
        });
        let init = BrachaMessage { source: self.me, round, kind: BrachaKind::Init(payload) };
        let mut actions: Vec<RbcAction<BrachaMessage>> =
            self.committee.others(self.me).map(|to| RbcAction::Send(to, init.clone())).collect();
        actions.extend(self.process(self.me, init, None));
        actions
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        message: BrachaMessage,
        _rng: &mut StdRng,
    ) -> Vec<RbcAction<BrachaMessage>> {
        self.process(from, message, None)
    }

    fn payload_bytes(message: &BrachaMessage) -> Option<&[u8]> {
        Some(message.kind.payload())
    }

    fn on_message_with_digest(
        &mut self,
        from: ProcessId,
        message: BrachaMessage,
        digest: Option<Digest>,
        _rng: &mut StdRng,
    ) -> Vec<RbcAction<BrachaMessage>> {
        self.process(from, message, digest)
    }

    fn prune(&mut self, before: Round) {
        self.instances.retain(|&(_, r), _| r >= before);
    }

    fn name() -> &'static str {
        "bracha"
    }

    fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    fn setup(n: usize) -> (Vec<BrachaRbc>, StdRng) {
        let committee = Committee::new(n).unwrap();
        let endpoints = committee.members().map(|p| BrachaRbc::new(committee, p, 0)).collect();
        (endpoints, StdRng::seed_from_u64(1))
    }

    /// Synchronously routes all actions until quiescence; returns
    /// deliveries per process.
    fn run_to_quiescence(
        endpoints: &mut [BrachaRbc],
        initial: Vec<(ProcessId, RbcAction<BrachaMessage>)>,
        rng: &mut StdRng,
    ) -> Vec<Vec<RbcDelivery>> {
        let mut delivered: Vec<Vec<RbcDelivery>> = vec![Vec::new(); endpoints.len()];
        let mut queue: VecDeque<(ProcessId, RbcAction<BrachaMessage>)> = initial.into();
        while let Some((actor, action)) = queue.pop_front() {
            match action {
                RbcAction::Send(to, m) => {
                    for a in endpoints[to.as_usize()].on_message(actor, m, rng) {
                        queue.push_back((to, a));
                    }
                }
                RbcAction::Deliver(d) => delivered[actor.as_usize()].push(d),
            }
        }
        delivered
    }

    #[test]
    fn correct_sender_delivers_everywhere() {
        let (mut eps, mut rng) = setup(4);
        let sender = ProcessId::new(0);
        let actions = eps[0].rbcast(b"block".to_vec(), Round::new(1), &mut rng);
        let initial = actions.into_iter().map(|a| (sender, a)).collect();
        let delivered = run_to_quiescence(&mut eps, initial, &mut rng);
        for (i, d) in delivered.iter().enumerate() {
            assert_eq!(d.len(), 1, "process {i}");
            assert_eq!(d[0].payload, b"block");
            assert_eq!(d[0].source, sender);
            assert_eq!(d[0].round, Round::new(1));
        }
    }

    #[test]
    fn integrity_no_double_delivery() {
        let (mut eps, mut rng) = setup(4);
        let sender = ProcessId::new(1);
        let a1 = eps[1].rbcast(b"x".to_vec(), Round::new(1), &mut rng);
        // A confused (or malicious) sender re-broadcasts the same instance
        // with a different payload; the first echo wins.
        let a2 = eps[1].rbcast(b"y".to_vec(), Round::new(1), &mut rng);
        let initial = a1.into_iter().chain(a2).map(|a| (sender, a)).collect();
        let delivered = run_to_quiescence(&mut eps, initial, &mut rng);
        for d in &delivered {
            assert_eq!(d.len(), 1);
            assert_eq!(d[0].payload, b"x");
        }
    }

    #[test]
    fn spoofed_init_is_ignored() {
        let (mut eps, mut rng) = setup(4);
        // p1 fabricates an INIT claiming p0 as source.
        let forged = BrachaMessage {
            source: ProcessId::new(0),
            round: Round::new(1),
            kind: BrachaKind::Init(b"forged".to_vec()),
        };
        let actions = eps[2].on_message(ProcessId::new(1), forged, &mut rng);
        assert!(actions.is_empty());
    }

    #[test]
    fn concurrent_instances_do_not_interfere() {
        let (mut eps, mut rng) = setup(4);
        let mut initial = Vec::new();
        for (i, payload) in [b"a", b"b", b"c", b"d"].iter().enumerate() {
            let p = ProcessId::new(i as u32);
            for a in eps[i].rbcast(payload.to_vec(), Round::new(1), &mut rng) {
                initial.push((p, a));
            }
        }
        let delivered = run_to_quiescence(&mut eps, initial, &mut rng);
        for d in &delivered {
            assert_eq!(d.len(), 4);
            let mut payloads: Vec<&[u8]> = d.iter().map(|x| x.payload.as_slice()).collect();
            payloads.sort();
            assert_eq!(payloads, vec![b"a".as_slice(), b"b", b"c", b"d"]);
        }
    }

    #[test]
    fn ready_amplification_delivers_without_init() {
        // A process that misses INIT and all ECHOs still delivers from
        // f + 1 READYs (amplification) — here we simulate by feeding
        // READYs directly.
        let (mut eps, mut rng) = setup(4);
        let msg = |kind| BrachaMessage { source: ProcessId::new(0), round: Round::new(1), kind };
        let mut actions = Vec::new();
        for peer in [1u32, 2, 3] {
            actions.extend(eps[3].on_message(
                ProcessId::new(peer),
                msg(BrachaKind::Ready(b"v".to_vec())),
                &mut rng,
            ));
        }
        let deliveries: Vec<_> = actions.iter().filter_map(RbcAction::as_delivery).collect();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].payload, b"v");
        // And it amplified its own READY to others.
        assert!(actions.iter().any(|a| matches!(
            a,
            RbcAction::Send(_, BrachaMessage { kind: BrachaKind::Ready(_), .. })
        )));
    }

    #[test]
    fn message_codec_roundtrip() {
        for kind in [
            BrachaKind::Init(vec![1, 2, 3]),
            BrachaKind::Echo(vec![]),
            BrachaKind::Ready(vec![255; 40]),
        ] {
            let msg = BrachaMessage { source: ProcessId::new(3), round: Round::new(9), kind };
            let bytes = msg.to_bytes();
            assert_eq!(bytes.len(), msg.encoded_len());
            assert_eq!(BrachaMessage::from_bytes(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn unknown_phase_tag_is_rejected() {
        let msg = BrachaMessage {
            source: ProcessId::new(0),
            round: Round::new(1),
            kind: BrachaKind::Init(vec![]),
        };
        let mut bytes = msg.to_bytes();
        // Tag byte sits after source (1 byte) and round (1 byte).
        bytes[2] = 9;
        assert!(BrachaMessage::from_bytes(&bytes).is_err());
    }

    #[test]
    fn digest_hint_path_matches_plain_on_message() {
        // Drive two endpoints through the same message sequence — one via
        // on_message, one via on_message_with_digest with the correct
        // pre-computed digest — and check the emitted actions agree.
        let (mut eps, mut rng) = setup(4);
        let committee = Committee::new(4).unwrap();
        let mut hinted = BrachaRbc::new(committee, ProcessId::new(3), 0);
        let msg = |kind| BrachaMessage { source: ProcessId::new(0), round: Round::new(1), kind };
        let sequence = vec![
            (ProcessId::new(0), msg(BrachaKind::Init(b"payload".to_vec()))),
            (ProcessId::new(1), msg(BrachaKind::Echo(b"payload".to_vec()))),
            (ProcessId::new(2), msg(BrachaKind::Echo(b"payload".to_vec()))),
            // An equivocating echo for different bytes.
            (ProcessId::new(0), msg(BrachaKind::Echo(b"other".to_vec()))),
            (ProcessId::new(1), msg(BrachaKind::Ready(b"payload".to_vec()))),
            (ProcessId::new(2), msg(BrachaKind::Ready(b"payload".to_vec()))),
        ];
        for (from, m) in sequence {
            let digest = BrachaRbc::message_digest(&m);
            assert_eq!(digest, Some(sha256(m.kind.payload())));
            let plain = eps[3].on_message(from, m.clone(), &mut rng);
            let fast = hinted.on_message_with_digest(from, m, digest, &mut rng);
            assert_eq!(plain, fast);
        }
        // Both delivered exactly once, with the majority payload.
        assert!(eps[3].instances[&(ProcessId::new(0), Round::new(1))].delivered);
        assert!(hinted.instances[&(ProcessId::new(0), Round::new(1))].delivered);
    }

    #[test]
    fn resolve_digest_memoizes_and_falls_back() {
        let mut known = BTreeMap::new();
        let payload = b"abc".to_vec();
        let digest = sha256(&payload);
        known.insert(digest, payload.clone());
        assert_eq!(resolve_digest(&known, &payload), digest);
        // Unseen bytes hash fresh — including a same-length near-miss.
        assert_eq!(resolve_digest(&known, b"abd"), sha256(b"abd"));
        assert_eq!(resolve_digest(&BTreeMap::new(), b""), sha256(b""));
    }

    #[test]
    fn prune_discards_old_instances() {
        let (mut eps, mut rng) = setup(4);
        let _ = eps[0].rbcast(b"old".to_vec(), Round::new(1), &mut rng);
        let _ = eps[0].rbcast(b"new".to_vec(), Round::new(5), &mut rng);
        assert_eq!(eps[0].instance_count(), 2);
        eps[0].prune(Round::new(3));
        assert_eq!(eps[0].instance_count(), 1);
    }
}
