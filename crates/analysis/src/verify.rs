//! Simulation self-verification: audit every honest node of a finished
//! simnet run.
//!
//! The hook is gated so production-profile experiments pay nothing:
//! [`AuditedSimulation::run_audited`] audits only in debug builds (or
//! when the `force-audit` feature is enabled), while
//! [`AuditedSimulation::audit_honest`] is always available for tests that
//! want the check unconditionally.

use std::fmt;

use dagrider_rbc::ReliableBroadcast;
use dagrider_simactor::DagRiderNode;
use dagrider_simnet::{Scheduler, Simulation};
use dagrider_types::ProcessId;

use crate::auditor::DagAuditor;
use crate::violation::InvariantViolation;

/// Per-process audit results for one simulation.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// `(process, its violations)`, one entry per audited process.
    per_process: Vec<(ProcessId, Vec<InvariantViolation>)>,
    /// Whether the audit actually ran (release-profile [`run_audited`]
    /// skips it unless `force-audit` is on).
    ///
    /// [`run_audited`]: AuditedSimulation::run_audited
    audited: bool,
}

impl AuditReport {
    /// A report for a run where the audit was compiled out.
    pub fn skipped() -> Self {
        Self { per_process: Vec::new(), audited: false }
    }

    /// Whether the audit ran at all.
    pub fn audited(&self) -> bool {
        self.audited
    }

    /// Whether no process had any violation (vacuously true if the audit
    /// was skipped — check [`AuditReport::audited`] to distinguish).
    pub fn is_clean(&self) -> bool {
        self.per_process.iter().all(|(_, v)| v.is_empty())
    }

    /// Total number of violations across all processes.
    pub fn violation_count(&self) -> usize {
        self.per_process.iter().map(|(_, v)| v.len()).sum()
    }

    /// Per-process results.
    pub fn per_process(&self) -> &[(ProcessId, Vec<InvariantViolation>)] {
        &self.per_process
    }

    /// Iterates over every `(process, violation)` pair.
    pub fn violations(&self) -> impl Iterator<Item = (ProcessId, &InvariantViolation)> {
        self.per_process.iter().flat_map(|(p, vs)| vs.iter().map(move |v| (*p, v)))
    }

    /// Panics with the formatted report if any violation was found.
    ///
    /// # Panics
    ///
    /// Panics when the report is not clean.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "DAG audit failed:\n{self}");
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.audited {
            return write!(f, "audit skipped (release build without force-audit)");
        }
        if self.is_clean() {
            return write!(f, "audit clean ({} processes)", self.per_process.len());
        }
        for (process, violations) in &self.per_process {
            for violation in violations {
                writeln!(f, "{process}: {violation}")?;
            }
        }
        Ok(())
    }
}

/// Extension trait wiring the [`DagAuditor`] into simnet runs.
pub trait AuditedSimulation {
    /// Audits the DAG and commit record of every honest (non-crashed,
    /// non-Byzantine) process, unconditionally.
    fn audit_honest(&self) -> AuditReport;

    /// Runs the simulation to quiescence, then audits — in debug builds
    /// or with the `force-audit` feature; a release-profile run returns
    /// [`AuditReport::skipped`] and pays nothing.
    fn run_audited(&mut self) -> AuditReport;
}

impl<B, S> AuditedSimulation for Simulation<DagRiderNode<B>, S>
where
    B: ReliableBroadcast,
    S: Scheduler,
{
    fn audit_honest(&self) -> AuditReport {
        let auditor = DagAuditor::new(self.committee());
        let per_process = self
            .honest_processes()
            .map(|p| {
                let node = self.actor(p);
                let mut violations = auditor.audit_dag(node.dag());
                violations.extend(auditor.audit_commits(node.dag(), node.commits()));
                // Complete traces (no ring overwrites) are audited too.
                if node.tracer().is_enabled() && node.tracer().dropped() == 0 {
                    violations.extend(auditor.audit_trace(&node.trace_records()));
                }
                (p, violations)
            })
            .collect();
        AuditReport { per_process, audited: true }
    }

    fn run_audited(&mut self) -> AuditReport {
        self.run();
        if cfg!(debug_assertions) || cfg!(feature = "force-audit") {
            self.audit_honest()
        } else {
            AuditReport::skipped()
        }
    }
}
