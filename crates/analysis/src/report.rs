//! Commit-latency and ordering-lag reporting from structured traces.
//!
//! [`TraceReport::build`] digests the trace rings of a finished simulation
//! into the quantities the paper's §6.2 analysis bounds: per-wave commit
//! latency in virtual ticks, in the paper's asynchronous time units (§3 —
//! elapsed ticks over the maximum delivered correct-to-correct delay), and
//! in DAG rounds; plus the ordering lag of every delivered vertex (DAG
//! insertion → `a_deliver`) and per-process traffic totals.

use std::collections::BTreeMap;
use std::fmt;

use dagrider_simnet::{Metrics, Time};
use dagrider_trace::{TraceEvent, TraceRecord};
use dagrider_types::{ProcessId, Round, VertexRef, Wave};

/// Aggregated commit latency for one wave, over every process that
/// committed its leader.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveLatency {
    /// The wave.
    pub wave: Wave,
    /// Processes that committed the wave's leader (directly or
    /// retroactively).
    pub commits: usize,
    /// How many of those commits were direct (Algorithm 3 line 36).
    pub direct: usize,
    /// Minimum ticks from entering the wave's first round to the commit.
    pub min_ticks: u64,
    /// Maximum such latency.
    pub max_ticks: u64,
    /// Mean such latency.
    pub mean_ticks: f64,
    /// Mean latency in asynchronous time units (§3).
    pub mean_time_units: f64,
    /// Mean rounds the committing process advanced past the wave's first
    /// round before the commit.
    pub mean_rounds: f64,
}

/// Distribution summary of per-vertex ordering lag (ticks between DAG
/// insertion and `a_deliver` at the same process).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LagStats {
    /// Vertices measured.
    pub count: u64,
    /// Smallest lag.
    pub min: u64,
    /// Largest lag.
    pub max: u64,
    /// Mean lag.
    pub mean: f64,
    /// Counts per power-of-two bucket: `buckets[i]` counts lags in
    /// `[2^i, 2^(i+1))` (`buckets[0]` includes lag 0).
    pub buckets: Vec<u64>,
}

/// One process's traffic and trace totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessTraffic {
    /// The process.
    pub process: ProcessId,
    /// Messages it put on the wire (send-time accounting).
    pub messages: u64,
    /// Bytes it put on the wire.
    pub bytes: u64,
    /// Trace records it contributed.
    pub records: u64,
    /// Frames its TCP send queues discarded under drop-oldest
    /// backpressure (zero in simulation, which has no bounded queues).
    pub dropped_frames: u64,
    /// High-water batch depth of its signature-verification pool (1 =
    /// the pool kept up; larger = decode/verify backlogs formed). Zero
    /// in simulation.
    pub verify_batch_depth: u64,
    /// Missing-batch fetch requests this process issued: it ordered a
    /// digest whose batch never arrived by dissemination and had to ask
    /// a peer. Zero when worker push streams keep up.
    pub batch_fetches: u64,
    /// Client transactions this process's front end admitted (final
    /// `ClientAdmission` sample; zero in simulation and for nodes
    /// serving no clients).
    pub client_accepted: u64,
    /// Admitted transactions coalesced into dissemination batches.
    pub client_coalesced: u64,
    /// Client submissions shed with a typed reject (queue full,
    /// oversized, or node not ready).
    pub client_shed: u64,
    /// High-water mark of any single client's pending-submission queue.
    pub client_queue_high_water: u64,
}

/// The full observability report for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Per-wave commit latencies, ascending by wave.
    pub waves: Vec<WaveLatency>,
    /// Ordering-lag distribution across all processes.
    pub ordering_lag: LagStats,
    /// Batch-resolve wait distribution: for every ordered digest, ticks
    /// between `DigestOrdered` and its `BatchResolved` (0 = the batch
    /// was already local when its digest reached the front of the
    /// order; larger = `a_deliver` stalled on dissemination or fetch).
    pub batch_resolve: LagStats,
    /// Per-process traffic, ascending by id.
    pub per_process: Vec<ProcessTraffic>,
    /// The §3 time-unit denominator (max delivered correct-to-correct
    /// delay).
    pub max_correct_delay: u64,
    /// Virtual time at the end of the run.
    pub elapsed: Time,
    /// Elapsed asynchronous time units at the end of the run.
    pub total_time_units: f64,
    /// Total `a_deliver`s observed in the traces.
    pub ordered_total: u64,
}

impl TraceReport {
    /// Builds the report from merged trace records (any number of
    /// processes) plus the run's [`Metrics`] and final virtual time.
    ///
    /// Latency definitions, per process:
    ///
    /// * **wave commit latency** — ticks from the process's first event in
    ///   the wave's first round (`RoundAdvanced` or `VertexInserted`) to
    ///   its `LeaderCommitted` record for the wave;
    /// * **ordering lag** — ticks from a vertex's `VertexInserted` to its
    ///   `VertexOrdered` record.
    pub fn build(records: &[TraceRecord], metrics: &Metrics, now: Time) -> Self {
        // Per process: the earliest timestamp seen for each round, the
        // current max round, and per-vertex insertion times.
        let mut round_entered: BTreeMap<(ProcessId, Round), Time> = BTreeMap::new();
        let mut max_round: BTreeMap<ProcessId, Round> = BTreeMap::new();
        let mut inserted_at: BTreeMap<(ProcessId, VertexRef), Time> = BTreeMap::new();
        let mut record_counts: BTreeMap<ProcessId, u64> = BTreeMap::new();
        let mut wave_latencies: BTreeMap<Wave, Vec<(u64, u64, bool)>> = BTreeMap::new();
        let mut lags: Vec<u64> = Vec::new();
        let mut resolve_waits: Vec<u64> = Vec::new();
        let mut fetch_counts: BTreeMap<ProcessId, u64> = BTreeMap::new();
        let mut admission: BTreeMap<ProcessId, [u64; 4]> = BTreeMap::new();

        let mut sorted: Vec<&TraceRecord> = records.iter().collect();
        sorted.sort_by_key(|r| (r.process, r.seq));
        for record in sorted {
            *record_counts.entry(record.process).or_default() += 1;
            let mut note_round = |round: Round, at: Time| {
                round_entered.entry((record.process, round)).or_insert(at);
            };
            match record.event {
                TraceEvent::RoundAdvanced { round } => {
                    note_round(round, record.at);
                    let entry = max_round.entry(record.process).or_insert(round);
                    *entry = (*entry).max(round);
                }
                TraceEvent::VertexInserted { vertex } => {
                    note_round(vertex.round, record.at);
                    inserted_at.entry((record.process, vertex)).or_insert(record.at);
                }
                TraceEvent::VertexOrdered { vertex, .. } => {
                    if let Some(&at) = inserted_at.get(&(record.process, vertex)) {
                        lags.push(record.at.ticks().saturating_sub(at.ticks()));
                    }
                }
                TraceEvent::BatchResolved { waited, .. } => {
                    resolve_waits.push(waited);
                }
                TraceEvent::BatchFetchRequested { .. } => {
                    *fetch_counts.entry(record.process).or_default() += 1;
                }
                TraceEvent::ClientAdmission { accepted, coalesced, shed, queue_high_water } => {
                    // Counters are cumulative; the last sample in seq
                    // order is the run's total.
                    admission.insert(record.process, [accepted, coalesced, shed, queue_high_water]);
                }
                TraceEvent::LeaderCommitted { wave, direct, .. } => {
                    let entered = round_entered
                        .get(&(record.process, wave.first_round()))
                        .map_or(0, |t| t.ticks());
                    let ticks = record.at.ticks().saturating_sub(entered);
                    let rounds = max_round
                        .get(&record.process)
                        .map_or(0, |r| r.number().saturating_sub(wave.first_round().number()));
                    wave_latencies.entry(wave).or_default().push((ticks, rounds, direct));
                }
                _ => {}
            }
        }

        let denominator = metrics.max_correct_delay();
        let waves = wave_latencies
            .into_iter()
            .map(|(wave, samples)| {
                let commits = samples.len();
                let direct = samples.iter().filter(|s| s.2).count();
                let min_ticks = samples.iter().map(|s| s.0).min().unwrap_or(0);
                let max_ticks = samples.iter().map(|s| s.0).max().unwrap_or(0);
                let mean_ticks = mean(samples.iter().map(|s| s.0));
                let mean_rounds = mean(samples.iter().map(|s| s.1));
                let mean_time_units =
                    if denominator == 0 { 0.0 } else { mean_ticks / denominator as f64 };
                WaveLatency {
                    wave,
                    commits,
                    direct,
                    min_ticks,
                    max_ticks,
                    mean_ticks,
                    mean_time_units,
                    mean_rounds,
                }
            })
            .collect();

        let per_process = record_counts
            .iter()
            .map(|(&process, &records)| {
                let adm = admission.get(&process).copied().unwrap_or_default();
                ProcessTraffic {
                    process,
                    messages: metrics.messages_sent_by(process),
                    bytes: metrics.bytes_sent_by(process),
                    records,
                    dropped_frames: 0,
                    verify_batch_depth: 0,
                    batch_fetches: fetch_counts.get(&process).copied().unwrap_or(0),
                    client_accepted: adm[0],
                    client_coalesced: adm[1],
                    client_shed: adm[2],
                    client_queue_high_water: adm[3],
                }
            })
            .collect();

        Self {
            waves,
            ordering_lag: lag_stats(&lags),
            batch_resolve: lag_stats(&resolve_waits),
            per_process,
            max_correct_delay: denominator,
            elapsed: now,
            total_time_units: metrics.time_units(now),
            ordered_total: lags.len() as u64,
        }
    }

    /// Attaches the TCP runtime's health counters to `process`'s traffic
    /// row, inserting a fresh row (zero simulated traffic) when the
    /// process contributed no trace records. The simulator never calls
    /// this; the cluster driver does, from [`NetNode`] accessors.
    ///
    /// [`NetNode`]: ../dagrider_net/struct.NetNode.html
    pub fn set_net_counters(
        &mut self,
        process: ProcessId,
        dropped_frames: u64,
        verify_batch_depth: u64,
    ) {
        let row = match self.per_process.iter_mut().find(|p| p.process == process) {
            Some(row) => row,
            None => {
                let at = self.per_process.partition_point(|p| p.process < process);
                self.per_process.insert(
                    at,
                    ProcessTraffic {
                        process,
                        messages: 0,
                        bytes: 0,
                        records: 0,
                        dropped_frames: 0,
                        verify_batch_depth: 0,
                        batch_fetches: 0,
                        client_accepted: 0,
                        client_coalesced: 0,
                        client_shed: 0,
                        client_queue_high_water: 0,
                    },
                );
                &mut self.per_process[at]
            }
        };
        row.dropped_frames = dropped_frames;
        row.verify_batch_depth = verify_batch_depth;
    }
}

fn mean(values: impl IntoIterator<Item = u64>) -> f64 {
    let mut sum = 0u64;
    let mut count = 0u64;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

fn lag_stats(lags: &[u64]) -> LagStats {
    if lags.is_empty() {
        return LagStats::default();
    }
    let max = lags.iter().copied().max().unwrap_or(0);
    let mut buckets = vec![0u64; bucket_of(max) + 1];
    for &lag in lags {
        buckets[bucket_of(lag)] += 1;
    }
    LagStats {
        count: lags.len() as u64,
        min: lags.iter().copied().min().unwrap_or(0),
        max,
        mean: mean(lags.iter().copied()),
        buckets,
    }
}

/// The power-of-two bucket index of `lag`: 0 for lags in `[0, 2)`, 1 for
/// `[2, 4)`, and so on.
fn bucket_of(lag: u64) -> usize {
    (64 - lag.max(1).leading_zeros() - 1) as usize
}

impl fmt::Display for TraceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: {} ticks = {:.2} time units (max correct delay {})",
            self.elapsed.ticks(),
            self.total_time_units,
            self.max_correct_delay,
        )?;
        writeln!(f, "per-wave commit latency:")?;
        writeln!(
            f,
            "  {:>5} {:>8} {:>7} {:>10} {:>12} {:>11} {:>7}",
            "wave", "commits", "direct", "ticks", "time units", "min..max", "rounds"
        )?;
        for w in &self.waves {
            writeln!(
                f,
                "  {:>5} {:>8} {:>7} {:>10.1} {:>12.2} {:>11} {:>7.1}",
                w.wave.number(),
                w.commits,
                w.direct,
                w.mean_ticks,
                w.mean_time_units,
                format!("{}..{}", w.min_ticks, w.max_ticks),
                w.mean_rounds,
            )?;
        }
        let lag = &self.ordering_lag;
        writeln!(
            f,
            "ordering lag ({} vertices): min {} mean {:.1} max {} ticks",
            lag.count, lag.min, lag.mean, lag.max
        )?;
        let tallest = lag.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &n) in lag.buckets.iter().enumerate() {
            let bar = "#".repeat(((n * 40).div_ceil(tallest)) as usize);
            writeln!(f, "  [{:>6}, {:>6}) {:>6} {bar}", 1u64 << i, 1u64 << (i + 1), n)?;
        }
        let resolve = &self.batch_resolve;
        if resolve.count > 0 {
            writeln!(
                f,
                "batch resolve wait ({} digests): min {} mean {:.1} max {} ticks",
                resolve.count, resolve.min, resolve.mean, resolve.max
            )?;
        }
        writeln!(f, "per-process traffic:")?;
        writeln!(
            f,
            "  {:>4} {:>9} {:>11} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6} {:>5}",
            "proc",
            "messages",
            "bytes",
            "records",
            "dropped",
            "vdepth",
            "fetches",
            "accepted",
            "coalesced",
            "shed",
            "qhw"
        )?;
        for p in &self.per_process {
            writeln!(
                f,
                "  {:>4} {:>9} {:>11} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6} {:>5}",
                p.process,
                p.messages,
                p.bytes,
                p.records,
                p.dropped_frames,
                p.verify_batch_depth,
                p.batch_fetches,
                p.client_accepted,
                p.client_coalesced,
                p.client_shed,
                p.client_queue_high_water
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use dagrider_trace::Tracer;

    use super::*;

    #[test]
    fn bucket_indexing_is_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1024), 10);
    }

    #[test]
    fn empty_trace_builds_an_empty_report() {
        let metrics = Metrics::new(4);
        let report = TraceReport::build(&[], &metrics, Time::new(10));
        assert!(report.waves.is_empty());
        assert_eq!(report.ordering_lag.count, 0);
        assert_eq!(report.ordered_total, 0);
        // Rendering must not panic on the empty report.
        assert!(report.to_string().contains("per-wave commit latency"));
    }

    #[test]
    fn wave_latency_measured_from_first_round_entry() {
        let mut tracer = Tracer::new(ProcessId::new(0), 64);
        tracer.set_now(Time::new(10));
        tracer.record(TraceEvent::RoundAdvanced { round: Round::new(1) });
        tracer.set_now(Time::new(30));
        tracer.record(TraceEvent::RoundAdvanced { round: Round::new(5) });
        tracer.set_now(Time::new(50));
        tracer.record(TraceEvent::LeaderCommitted {
            wave: Wave::new(1),
            leader: VertexRef::new(Round::new(1), ProcessId::new(2)),
            direct: true,
        });
        let metrics = Metrics::new(4);
        let report = TraceReport::build(&tracer.records(), &metrics, Time::new(60));
        assert_eq!(report.waves.len(), 1);
        let w = &report.waves[0];
        assert_eq!(w.wave, Wave::new(1));
        assert_eq!(w.commits, 1);
        assert_eq!(w.direct, 1);
        assert_eq!(w.min_ticks, 40, "t50 commit - t10 round entry");
        assert!((w.mean_rounds - 4.0).abs() < 1e-9, "advanced to r5 from r1");
    }

    #[test]
    fn net_counters_attach_to_existing_rows_and_insert_missing_ones() {
        let mut tracer = Tracer::new(ProcessId::new(1), 64);
        tracer.set_now(Time::new(5));
        tracer.record(TraceEvent::RoundAdvanced { round: Round::new(1) });
        let metrics = Metrics::new(4);
        let mut report = TraceReport::build(&tracer.records(), &metrics, Time::new(10));

        // Process 1 has a traffic row from its trace records; process 0
        // does not and must be inserted in id order.
        report.set_net_counters(ProcessId::new(1), 7, 3);
        report.set_net_counters(ProcessId::new(0), 2, 1);
        assert_eq!(report.per_process.len(), 2);
        assert_eq!(report.per_process[0].process, ProcessId::new(0));
        assert_eq!(report.per_process[0].dropped_frames, 2);
        assert_eq!(report.per_process[1].records, 1, "trace totals survive the setter");
        assert_eq!(report.per_process[1].dropped_frames, 7);
        assert_eq!(report.per_process[1].verify_batch_depth, 3);

        let rendered = report.to_string();
        assert!(rendered.contains("dropped"), "{rendered}");
        assert!(rendered.contains("vdepth"), "{rendered}");
    }

    #[test]
    fn batch_resolve_waits_and_fetch_counts_are_tallied() {
        use dagrider_types::BatchDigest;
        let d = BatchDigest::new([7u8; 32]);
        let mut tracer = Tracer::new(ProcessId::new(2), 64);
        tracer.set_now(Time::new(10));
        tracer.record(TraceEvent::DigestOrdered { digest: d });
        tracer.record(TraceEvent::BatchFetchRequested { digest: d, from: ProcessId::new(0) });
        tracer.set_now(Time::new(18));
        tracer.record(TraceEvent::BatchResolved { digest: d, waited: 8 });
        let metrics = Metrics::new(4);
        let report = TraceReport::build(&tracer.records(), &metrics, Time::new(20));
        assert_eq!(report.batch_resolve.count, 1);
        assert_eq!(report.batch_resolve.min, 8);
        assert_eq!(report.batch_resolve.max, 8);
        assert_eq!(report.per_process.len(), 1);
        assert_eq!(report.per_process[0].batch_fetches, 1);

        let rendered = report.to_string();
        assert!(rendered.contains("batch resolve wait (1 digests)"), "{rendered}");
        assert!(rendered.contains("fetches"), "{rendered}");
    }

    #[test]
    fn admission_columns_report_the_last_cumulative_sample() {
        let mut tracer = Tracer::new(ProcessId::new(0), 64);
        tracer.set_now(Time::new(5));
        tracer.record(TraceEvent::ClientAdmission {
            accepted: 10,
            coalesced: 8,
            shed: 0,
            queue_high_water: 3,
        });
        tracer.set_now(Time::new(9));
        tracer.record(TraceEvent::ClientAdmission {
            accepted: 120,
            coalesced: 118,
            shed: 3,
            queue_high_water: 42,
        });
        let metrics = Metrics::new(4);
        let report = TraceReport::build(&tracer.records(), &metrics, Time::new(10));
        assert_eq!(report.per_process.len(), 1);
        let p = &report.per_process[0];
        assert_eq!(p.client_accepted, 120, "later sample wins");
        assert_eq!(p.client_coalesced, 118);
        assert_eq!(p.client_shed, 3);
        assert_eq!(p.client_queue_high_water, 42);

        let rendered = report.to_string();
        assert!(rendered.contains("accepted"), "{rendered}");
        assert!(rendered.contains("qhw"), "{rendered}");
    }

    #[test]
    fn ordering_lag_pairs_insert_and_order_per_process() {
        let mut tracer = Tracer::new(ProcessId::new(1), 64);
        let v = VertexRef::new(Round::new(1), ProcessId::new(0));
        tracer.set_now(Time::new(5));
        tracer.record(TraceEvent::VertexInserted { vertex: v });
        tracer.set_now(Time::new(25));
        tracer.record(TraceEvent::VertexOrdered { vertex: v, wave: Wave::new(1), position: 0 });
        let metrics = Metrics::new(4);
        let report = TraceReport::build(&tracer.records(), &metrics, Time::new(30));
        assert_eq!(report.ordering_lag.count, 1);
        assert_eq!(report.ordering_lag.min, 20);
        assert_eq!(report.ordering_lag.max, 20);
    }
}
