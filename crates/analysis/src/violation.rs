//! The typed invariant-violation catalogue.
//!
//! Every violation names the offending vertex (or wave) and cites the part
//! of the paper whose guarantee it breaks, so an audit report reads as a
//! checklist against §4–§5 of *All You Need is DAG*.

use std::fmt;

use dagrider_types::{BatchDigest, ProcessId, Round, VertexRef, Wave};

/// One violated protocol invariant, found by
/// [`DagAuditor`](crate::DagAuditor).
///
/// Variants are grouped by layer: structural DAG invariants (§4,
/// Algorithm 2), snapshot integrity, and ordering/commit-rule consistency
/// (§5, Algorithm 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// An edge points to a round at or above its vertex's round, breaking
    /// round monotonicity (§4, Algorithm 1: edges reference earlier
    /// rounds).
    NonMonotoneEdge {
        /// The offending vertex.
        vertex: VertexRef,
        /// The edge that fails to descend.
        edge: VertexRef,
    },
    /// Following edges returns to a vertex — the "DAG" has a cycle (§4:
    /// the structure must be a round-based DAG).
    CycleDetected {
        /// A vertex on the detected cycle.
        vertex: VertexRef,
    },
    /// A vertex references a vertex that is not present (and not below the
    /// garbage-collection floor) — causal closure is broken (§4, Claim 1;
    /// Algorithm 2 lines 6–9 only insert once all references are present).
    MissingEdgeTarget {
        /// The offending vertex.
        vertex: VertexRef,
        /// The absent reference.
        edge: VertexRef,
    },
    /// A non-genesis vertex has fewer than `2f + 1` strong edges (§4,
    /// Algorithm 2 lines 24–26 discard such vertices at delivery).
    InsufficientStrongEdges {
        /// The offending vertex.
        vertex: VertexRef,
        /// Strong edges present.
        found: usize,
        /// The `2f + 1` quorum required.
        required: usize,
    },
    /// A strong edge does not point to the immediately preceding round
    /// (§4, Algorithm 1: strong edges reference round `r - 1`).
    StrongEdgeWrongRound {
        /// The offending vertex.
        vertex: VertexRef,
        /// The misdirected strong edge.
        edge: VertexRef,
    },
    /// A weak edge points to round `r - 1` or above (§4, Algorithm 1: weak
    /// edges reference rounds `< r - 1`).
    WeakEdgeWrongRound {
        /// The offending vertex.
        vertex: VertexRef,
        /// The misdirected weak edge.
        edge: VertexRef,
    },
    /// A weak edge targets a vertex already reachable from the vertex's
    /// strong edges — correct processes only add weak edges to otherwise
    /// unreachable orphans (§4, Algorithm 2 lines 27–31).
    RedundantWeakEdge {
        /// The offending vertex.
        vertex: VertexRef,
        /// The already-reachable target.
        edge: VertexRef,
    },
    /// Two distinct vertices share a `(process, round)` slot — equivocation
    /// that reliable broadcast must have prevented (§2 integrity; §4).
    DuplicateVertex {
        /// The doubly-occupied slot.
        slot: VertexRef,
    },
    /// A vertex's source is not one of the `n = 3f + 1` committee members
    /// (§2: the process set is known).
    UnknownSource {
        /// The offending vertex.
        vertex: VertexRef,
        /// Its out-of-committee source.
        source: ProcessId,
    },
    /// A snapshot entry's recorded SHA-256 digest does not match the
    /// vertex bytes — the snapshot was corrupted or tampered with in
    /// transit (§2: links are authenticated; integrity is assumed, so it
    /// must be checked when a DAG crosses a trust boundary).
    DigestMismatch {
        /// The vertex whose bytes hash differently.
        vertex: VertexRef,
    },
    /// A commit event's leader vertex is absent from the wave's first
    /// round (§5, Algorithm 3 lines 46–50: `get_wave_vertex_leader` must
    /// return the vertex for the wave to resolve).
    MissingLeaderVertex {
        /// The wave whose commit lacks its leader vertex.
        wave: Wave,
        /// The elected leader process.
        leader: ProcessId,
    },
    /// A directly committed leader lacks `2f + 1` round-4 vertices with
    /// strong paths to it — the commit rule did not actually hold (§5,
    /// Algorithm 3 line 36).
    UnjustifiedCommit {
        /// The wave that claimed a direct commit.
        wave: Wave,
        /// The leader vertex.
        leader: VertexRef,
        /// Vertices of the wave's last round with strong paths to the
        /// leader.
        supporters: usize,
        /// The `2f + 1` quorum required.
        required: usize,
    },
    /// In sparse-edge mode, a directly committed leader lacks the
    /// adjusted sampled-support threshold `max(f + 1, n - k + 1)` of last-round
    /// vertices with strong paths to it — the commit was claimed without
    /// sufficient sampled support (§5, Algorithm 3 line 36, adapted per
    /// Clownfish's sparse sampling; see DESIGN.md "Sparse edges").
    SparseSupportViolation {
        /// The wave that claimed a direct commit.
        wave: Wave,
        /// The leader vertex.
        leader: VertexRef,
        /// Last-round vertices with strong (sampled) paths to the leader.
        supporters: usize,
        /// The adjusted threshold `max(f + 1, n - k + 1)` required.
        required: usize,
    },
    /// The incremental reachability engine disagrees with the BFS oracle:
    /// a `path`/`strong_path` bit probe returned one answer, a traversal
    /// of the actual edges returned the other. Every commit decision and
    /// delivery order flows through these queries (§5, Algorithm 3), so a
    /// divergence means the closure bitsets are corrupt.
    ReachabilityDivergence {
        /// The query's origin vertex.
        from: VertexRef,
        /// The query's target vertex.
        to: VertexRef,
        /// Whether the diverging query was `strong_path` (else `path`).
        strong_only: bool,
        /// The engine's (wrong, per the oracle) answer.
        engine: bool,
    },
    /// Two consecutively committed leaders are not connected by a strong
    /// path — the retroactive commit chain of Algorithm 3 lines 39–43
    /// (guaranteed by Lemma 1) is broken, which would let processes order
    /// divergent histories.
    BrokenLeaderChain {
        /// The earlier committed wave.
        earlier: Wave,
        /// Its leader vertex.
        earlier_leader: VertexRef,
        /// The later committed wave whose leader fails to reach it.
        later: Wave,
        /// The later leader vertex.
        later_leader: VertexRef,
    },
    /// A trace orders a vertex (`a_deliver`) that was never inserted into
    /// the DAG beforehand — ordering must only walk the causal history of
    /// vertices the DAG actually holds (§5, Algorithm 3 lines 51–57 over
    /// Algorithm 2's causally closed DAG).
    OrderedBeforeDelivered {
        /// The vertex ordered without a preceding insertion.
        vertex: VertexRef,
    },
    /// A trace commits the same wave's leader twice — `decidedWave`
    /// advances monotonically and each wave resolves at most once (§5,
    /// Algorithm 3 line 44).
    DuplicateWaveCommit {
        /// The doubly-committed wave.
        wave: Wave,
        /// The leader vertex of the second commit.
        leader: VertexRef,
    },
    /// A trace resolves a wave (commit or skip) with no preceding coin
    /// flip — leaders exist only after `choose_leader(w)` returns (§5,
    /// Algorithm 3 lines 34–35).
    CommitWithoutCoin {
        /// The wave resolved without its coin.
        wave: Wave,
        /// The claimed leader process.
        leader: ProcessId,
    },
    /// A trace advances to a round at or below an earlier one — the
    /// construction layer's round counter is strictly monotone (§4,
    /// Algorithm 2 lines 10–13).
    NonMonotoneRound {
        /// The round advanced to.
        round: Round,
        /// The highest round previously advanced to.
        previous: Round,
    },
    /// A trace orders the same vertex twice — `deliveredVertices`
    /// guarantees each vertex a single position in the total order (§5,
    /// Algorithm 3 lines 53–56).
    DuplicateOrdered {
        /// The doubly-ordered vertex.
        vertex: VertexRef,
    },
    /// A trace orders a batch digest that never resolves to a stored
    /// batch — with digest-carrying vertices, `a_deliver` of the
    /// transactions requires the batch itself, so an unresolved ordered
    /// digest means the total order's payload is incomplete (§5,
    /// Algorithm 3 lines 51-57; dissemination per the Narwhal
    /// decoupling, PAPERS.md "Bullshark").
    UnresolvedOrderedDigest {
        /// The process whose trace ordered the digest.
        process: ProcessId,
        /// The digest that never resolved.
        digest: BatchDigest,
    },
    /// A recovered process's rebuilt ordered log names a different vertex
    /// than its pre-crash log at the same position — replay delivered a
    /// history the process never had, breaking Total Order for the
    /// process against itself (§5, Algorithm 3 lines 51-57: the order is
    /// a deterministic function of the delivered DAG).
    RecoveryLogDivergence {
        /// Position in the ordered log where the two runs part ways.
        position: usize,
        /// The vertex the pre-crash log delivered there.
        expected: VertexRef,
        /// The vertex the recovered log delivered there.
        found: VertexRef,
    },
    /// A recovered process re-delivered the same vertex at the same log
    /// position but with different block bytes — the payload bound to a
    /// position in the total order changed across the crash (§5,
    /// Algorithm 3 lines 51-57: `a_deliver(m, ...)` fixes `m`).
    RecoveryPayloadMismatch {
        /// Position in the ordered log.
        position: usize,
        /// The vertex whose payload changed.
        vertex: VertexRef,
    },
    /// A recovery that was expected to be complete ends before
    /// re-delivering everything the pre-crash run had already delivered
    /// — a committed delivery was lost (§5, Algorithm 3 lines 51-57;
    /// durably delivered means delivered forever).
    RecoveryLostDelivery {
        /// First pre-crash log position the recovered log lacks.
        position: usize,
        /// The vertex delivered there before the crash.
        vertex: VertexRef,
    },
    /// A process's client-admission counters regressed between trace
    /// samples. The admission statistics (accepted / coalesced / shed /
    /// queue high-water) are cumulative monotone counters, so a later
    /// sample reporting a smaller value means records were reordered,
    /// dropped, or fabricated — the audit trail of client submissions
    /// (§1: "clients send transactions") cannot be trusted.
    NonMonotoneAdmission {
        /// The process whose trace regressed.
        process: ProcessId,
        /// Which counter regressed (`accepted`, `coalesced`, `shed`, or
        /// `queue_high_water`).
        counter: &'static str,
        /// The regressed (later, smaller) sample.
        value: u64,
        /// The earlier, larger sample.
        previous: u64,
    },
}

impl InvariantViolation {
    /// The paper section/algorithm whose guarantee this violation breaks.
    pub fn citation(&self) -> &'static str {
        match self {
            InvariantViolation::NonMonotoneEdge { .. }
            | InvariantViolation::CycleDetected { .. } => "§4, Algorithm 1 (round-based DAG)",
            InvariantViolation::MissingEdgeTarget { .. } => "§4, Claim 1 / Algorithm 2 lines 6-9",
            InvariantViolation::InsufficientStrongEdges { .. }
            | InvariantViolation::StrongEdgeWrongRound { .. } => "§4, Algorithm 2 lines 24-26",
            InvariantViolation::WeakEdgeWrongRound { .. }
            | InvariantViolation::RedundantWeakEdge { .. } => "§4, Algorithm 2 lines 27-31",
            InvariantViolation::DuplicateVertex { .. } => "§2 (RBC integrity) / §4",
            InvariantViolation::UnknownSource { .. } => "§2 (known process set, n = 3f+1)",
            InvariantViolation::DigestMismatch { .. } => "§2 (authenticated links)",
            InvariantViolation::MissingLeaderVertex { .. } => "§5, Algorithm 3 lines 46-50",
            InvariantViolation::ReachabilityDivergence { .. } => {
                "§4, Algorithm 1 (path / strong_path)"
            }
            InvariantViolation::UnjustifiedCommit { .. } => "§5, Algorithm 3 line 36",
            InvariantViolation::SparseSupportViolation { .. } => {
                "§5, Algorithm 3 line 36 (sparse-adjusted; Clownfish)"
            }
            InvariantViolation::BrokenLeaderChain { .. } => "§5, Algorithm 3 lines 39-43 / Lemma 1",
            InvariantViolation::OrderedBeforeDelivered { .. }
            | InvariantViolation::DuplicateOrdered { .. }
            | InvariantViolation::UnresolvedOrderedDigest { .. }
            | InvariantViolation::RecoveryLogDivergence { .. }
            | InvariantViolation::RecoveryPayloadMismatch { .. }
            | InvariantViolation::RecoveryLostDelivery { .. } => "§5, Algorithm 3 lines 51-57",
            InvariantViolation::DuplicateWaveCommit { .. } => "§5, Algorithm 3 line 44",
            InvariantViolation::CommitWithoutCoin { .. } => "§5, Algorithm 3 lines 34-35",
            InvariantViolation::NonMonotoneRound { .. } => "§4, Algorithm 2 lines 10-13",
            InvariantViolation::NonMonotoneAdmission { .. } => {
                "§1 (client submission; cumulative admission counters)"
            }
        }
    }

    /// The vertex this violation is anchored to, when there is one.
    pub fn vertex(&self) -> Option<VertexRef> {
        match self {
            InvariantViolation::NonMonotoneEdge { vertex, .. }
            | InvariantViolation::CycleDetected { vertex }
            | InvariantViolation::MissingEdgeTarget { vertex, .. }
            | InvariantViolation::InsufficientStrongEdges { vertex, .. }
            | InvariantViolation::StrongEdgeWrongRound { vertex, .. }
            | InvariantViolation::WeakEdgeWrongRound { vertex, .. }
            | InvariantViolation::RedundantWeakEdge { vertex, .. }
            | InvariantViolation::UnknownSource { vertex, .. }
            | InvariantViolation::DigestMismatch { vertex } => Some(*vertex),
            InvariantViolation::DuplicateVertex { slot } => Some(*slot),
            InvariantViolation::ReachabilityDivergence { from, .. } => Some(*from),
            InvariantViolation::UnjustifiedCommit { leader, .. }
            | InvariantViolation::SparseSupportViolation { leader, .. } => Some(*leader),
            InvariantViolation::BrokenLeaderChain { later_leader, .. } => Some(*later_leader),
            InvariantViolation::MissingLeaderVertex { wave, leader }
            | InvariantViolation::CommitWithoutCoin { wave, leader } => {
                Some(VertexRef::new(wave.first_round(), *leader))
            }
            InvariantViolation::OrderedBeforeDelivered { vertex }
            | InvariantViolation::DuplicateOrdered { vertex } => Some(*vertex),
            InvariantViolation::RecoveryLogDivergence { found, .. } => Some(*found),
            InvariantViolation::RecoveryPayloadMismatch { vertex, .. }
            | InvariantViolation::RecoveryLostDelivery { vertex, .. } => Some(*vertex),
            InvariantViolation::DuplicateWaveCommit { leader, .. } => Some(*leader),
            InvariantViolation::NonMonotoneRound { .. }
            | InvariantViolation::UnresolvedOrderedDigest { .. }
            | InvariantViolation::NonMonotoneAdmission { .. } => None,
        }
    }

    /// The round the violation is anchored to (for sorting reports).
    pub fn round(&self) -> Round {
        self.vertex().map_or(Round::GENESIS, |v| v.round)
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::NonMonotoneEdge { vertex, edge } => {
                write!(f, "{vertex} has an edge to {edge}, at or above its own round")
            }
            InvariantViolation::CycleDetected { vertex } => {
                write!(f, "{vertex} lies on a cycle")
            }
            InvariantViolation::MissingEdgeTarget { vertex, edge } => {
                write!(f, "{vertex} references absent vertex {edge} (causal closure broken)")
            }
            InvariantViolation::InsufficientStrongEdges { vertex, found, required } => {
                write!(f, "{vertex} has {found} strong edges, needs >= {required}")
            }
            InvariantViolation::StrongEdgeWrongRound { vertex, edge } => {
                write!(f, "{vertex} has a strong edge to {edge}, not the previous round")
            }
            InvariantViolation::WeakEdgeWrongRound { vertex, edge } => {
                write!(f, "{vertex} has a weak edge to {edge}, not strictly below round - 1")
            }
            InvariantViolation::RedundantWeakEdge { vertex, edge } => {
                write!(
                    f,
                    "{vertex} has a weak edge to {edge}, which its strong edges already reach"
                )
            }
            InvariantViolation::DuplicateVertex { slot } => {
                write!(f, "two distinct vertices occupy slot {slot} (equivocation)")
            }
            InvariantViolation::UnknownSource { vertex, source } => {
                write!(f, "{vertex} was broadcast by non-member {source}")
            }
            InvariantViolation::DigestMismatch { vertex } => {
                write!(f, "{vertex}'s bytes do not hash to its recorded digest")
            }
            InvariantViolation::MissingLeaderVertex { wave, leader } => {
                write!(f, "wave {wave} committed leader {leader} whose vertex is absent")
            }
            InvariantViolation::ReachabilityDivergence { from, to, strong_only, engine } => {
                let query = if *strong_only { "strong_path" } else { "path" };
                write!(
                    f,
                    "{query}({from} -> {to}): engine answers {engine}, BFS oracle answers {}",
                    !engine
                )
            }
            InvariantViolation::UnjustifiedCommit { wave, leader, supporters, required } => {
                write!(
                    f,
                    "wave {wave} directly committed {leader} with {supporters} supporters, needs >= {required}"
                )
            }
            InvariantViolation::SparseSupportViolation { wave, leader, supporters, required } => {
                write!(
                    f,
                    "wave {wave} directly committed {leader} with {supporters} sampled supporters, \
                     needs >= {required}"
                )
            }
            InvariantViolation::BrokenLeaderChain {
                earlier,
                earlier_leader,
                later,
                later_leader,
            } => {
                write!(
                    f,
                    "committed leader {later_leader} (wave {later}) has no strong path to \
                     committed leader {earlier_leader} (wave {earlier})"
                )
            }
            InvariantViolation::OrderedBeforeDelivered { vertex } => {
                write!(f, "{vertex} was ordered before it was inserted into the DAG")
            }
            InvariantViolation::DuplicateWaveCommit { wave, leader } => {
                write!(f, "wave {wave} committed its leader twice (second: {leader})")
            }
            InvariantViolation::CommitWithoutCoin { wave, leader } => {
                write!(f, "wave {wave} resolved with leader {leader} before its coin flipped")
            }
            InvariantViolation::NonMonotoneRound { round, previous } => {
                write!(f, "round advanced to {round} at or below earlier round {previous}")
            }
            InvariantViolation::DuplicateOrdered { vertex } => {
                write!(f, "{vertex} appears twice in the ordered log")
            }
            InvariantViolation::UnresolvedOrderedDigest { process, digest } => {
                write!(
                    f,
                    "{process} ordered batch digest {digest} that never resolved to a stored batch"
                )
            }
            InvariantViolation::RecoveryLogDivergence { position, expected, found } => {
                write!(
                    f,
                    "recovered log delivers {found} at position {position} where the pre-crash \
                     log delivered {expected}"
                )
            }
            InvariantViolation::RecoveryPayloadMismatch { position, vertex } => {
                write!(
                    f,
                    "recovered log re-delivers {vertex} at position {position} with different \
                     block bytes"
                )
            }
            InvariantViolation::RecoveryLostDelivery { position, vertex } => {
                write!(
                    f,
                    "recovery lost {vertex}, delivered at position {position} before the crash"
                )
            }
            InvariantViolation::NonMonotoneAdmission { process, counter, value, previous } => {
                write!(
                    f,
                    "{process} admission counter `{counter}` regressed from {previous} to {value}"
                )
            }
        }?;
        write!(f, " [{}]", self.citation())
    }
}
