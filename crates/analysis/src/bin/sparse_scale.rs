//! `sparse-scale`: the large-n sparse-edge experiment — dense vs sparse
//! (Clownfish-style k-sampled strong edges) at n ∈ {64, 128, 256}, over
//! the probabilistic (sample-based) RBC so message complexity stays
//! O(n log n) per broadcast and n = 256 terminates in reasonable time.
//!
//! ```text
//! sparse-scale [seed] [k] [n ...]
//!     # defaults: seed 7, k 24, n = 64 128 256
//! ```
//!
//! For each n, both modes run the same seeded simulation to a bounded
//! round and the binary prints one row per (n, mode): wall time, DAG
//! size, mean bytes per vertex, mean strong/weak edges per vertex, wire
//! traffic, commit latency in rounds (direct = 4; a wave committed
//! indirectly from the direct wave `W` pays `4 (W - w) + 4`), and the
//! wave outcome mix. Every process's commit record is audited with the
//! sparse-aware [`DagAuditor`], ordered logs are checked for pairwise
//! prefix agreement, and a sample of local DAGs gets the full structural
//! audit. Exit code 0 means every run terminated, agreed, and audited
//! clean; 1 means a violation or disagreement; 2 means bad usage.

use std::process::ExitCode;
use std::time::Instant;

use dagrider_analysis::DagAuditor;
use dagrider_core::{NodeConfig, WaveOutcome};
use dagrider_crypto::deal_coin_keys;
use dagrider_rbc::ProbabilisticRbc;
use dagrider_simactor::DagRiderNode;
use dagrider_simnet::{Simulation, UniformScheduler};
use dagrider_types::{Committee, Encode, Round, SparseEdgeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bounded horizon per committee size: enough waves to exercise the
/// commit rule while keeping the n·log n·rounds message volume sane.
fn max_round_for(n: usize) -> u64 {
    match n {
        ..=64 => 16,
        65..=128 => 12,
        _ => 8,
    }
}

/// One (n, mode) run's summary row.
struct RunRow {
    n: usize,
    mode: String,
    wall_secs: f64,
    vertices: usize,
    bytes_per_vertex: f64,
    strong_per_vertex: f64,
    weak_per_vertex: f64,
    wire_mb: f64,
    mean_latency_rounds: f64,
    direct: usize,
    indirect: usize,
    skipped: usize,
    violations: usize,
}

/// Mean commit latency in rounds plus the wave outcome mix, from one
/// process's commit record. Commit events are appended in interpretation
/// order and a wave's direct event precedes the indirect events of the
/// earlier waves it retroactively commits, so a forward scan tracking
/// the last direct wave recovers each indirect commit's trigger.
fn latency_stats(commits: &[dagrider_core::CommitEvent]) -> (f64, usize, usize, usize) {
    let (mut direct, mut indirect, mut skipped) = (0usize, 0usize, 0usize);
    let mut total_rounds = 0u64;
    let mut last_direct = 0u64;
    let mut resolved = std::collections::BTreeSet::new();
    for event in commits {
        match event.outcome {
            WaveOutcome::Direct => {
                direct += 1;
                last_direct = event.wave.number();
                resolved.insert(event.wave.number());
                total_rounds += 4;
            }
            WaveOutcome::Indirect => {
                indirect += 1;
                resolved.insert(event.wave.number());
                total_rounds += 4 * (last_direct - event.wave.number()) + 4;
            }
            WaveOutcome::Skipped => {}
        }
    }
    for event in commits {
        if event.outcome == WaveOutcome::Skipped && !resolved.contains(&event.wave.number()) {
            skipped += 1;
        }
    }
    let committed = direct + indirect;
    let mean = if committed == 0 { 0.0 } else { total_rounds as f64 / committed as f64 };
    (mean, direct, indirect, skipped)
}

/// Runs one (n, mode) simulation and summarizes it.
fn run_one(committee: Committee, seed: u64, sparse: Option<SparseEdgeConfig>) -> RunRow {
    let n = committee.n();
    let max_round = max_round_for(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = deal_coin_keys(&committee, &mut rng);
    let mut config = NodeConfig::default().with_max_round(max_round);
    if let Some(s) = sparse {
        config = config.with_sparse_edges(s.k(), s.seed());
    }
    let nodes: Vec<DagRiderNode<ProbabilisticRbc>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 10), seed);
    let started = Instant::now();
    sim.run();
    let wall_secs = started.elapsed().as_secs_f64();

    // DAG shape from process 0's view (honest views converge; spot-check
    // audits below cover the rest).
    let p0 = committee.members().next().expect("committee is non-empty");
    let dag = sim.actor(p0).dag();
    let mut vertices = 0usize;
    let (mut bytes, mut strong, mut weak) = (0u64, 0u64, 0u64);
    for v in dag.iter().filter(|v| v.round() != Round::GENESIS) {
        vertices += 1;
        bytes += v.encoded_len() as u64;
        strong += v.strong_edges().len() as u64;
        weak += v.weak_edges().len() as u64;
    }
    let per = |sum: u64| if vertices == 0 { 0.0 } else { sum as f64 / vertices as f64 };

    let (mean_latency_rounds, direct, indirect, skipped) = latency_stats(sim.actor(p0).commits());

    // Audit: commit records for every process; the O(V²) structural +
    // reachability audit for an evenly spaced sample of at most 8 views.
    let mut auditor = DagAuditor::new(committee);
    if let Some(s) = sparse {
        auditor = auditor.with_sparse_edges(s);
    }
    let mut violations = Vec::new();
    for p in committee.members() {
        violations.extend(auditor.audit_commits(sim.actor(p).dag(), sim.actor(p).commits()));
    }
    let stride = n.div_ceil(8).max(1);
    for p in committee.members().step_by(stride) {
        violations.extend(auditor.audit_dag(sim.actor(p).dag()));
    }

    // Safety across processes: every pair of ordered logs must agree on
    // their common prefix (the total order is a prefix relation). Local
    // delivery times differ between processes by design; the agreed-on
    // content is the vertex sequence and the blocks bound to it.
    let mut disagreements = 0usize;
    let reference: Vec<_> =
        sim.actor(p0).ordered().iter().map(|o| (o.vertex, o.block.clone())).collect();
    for p in committee.members().skip(1) {
        let other = sim.actor(p).ordered();
        let common = reference.len().min(other.len());
        if (0..common)
            .any(|i| (other[i].vertex, &other[i].block) != (reference[i].0, &reference[i].1))
        {
            eprintln!("sparse-scale: ordered-log prefix disagreement between {p0} and {p}");
            disagreements += 1;
        }
    }

    for violation in &violations {
        eprintln!("violation (n={n}): {violation}");
    }
    RunRow {
        n,
        mode: match sparse {
            Some(s) => format!("sparse k={}", s.k()),
            None => "dense".to_string(),
        },
        wall_secs,
        vertices,
        bytes_per_vertex: per(bytes),
        strong_per_vertex: per(strong),
        weak_per_vertex: per(weak),
        wire_mb: sim.metrics().bytes_sent() as f64 / 1.0e6,
        mean_latency_rounds,
        direct,
        indirect,
        skipped,
        violations: violations.len() + disagreements,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut numbers = Vec::new();
    for arg in &args {
        match arg.parse::<u64>() {
            Ok(v) => numbers.push(v),
            Err(_) => {
                eprintln!("usage: sparse-scale [seed] [k] [n ...]");
                return ExitCode::from(2);
            }
        }
    }
    let seed = numbers.first().copied().unwrap_or(7);
    let k = numbers.get(1).copied().unwrap_or(24) as usize;
    let sizes: Vec<usize> = if numbers.len() > 2 {
        numbers[2..].iter().map(|&v| v as usize).collect()
    } else {
        vec![64, 128, 256]
    };

    println!("sparse-scale: seed {seed}, k {k}, probabilistic RBC, rounds bounded per n");
    println!(
        "{:>5} {:<12} {:>8} {:>9} {:>8} {:>7} {:>7} {:>9} {:>8} {:>7} {:>9} {:>8} {:>5}",
        "n",
        "mode",
        "rounds",
        "wall_s",
        "vertices",
        "B/vtx",
        "strong",
        "weak",
        "wire_MB",
        "lat_rd",
        "direct",
        "indirect",
        "skip"
    );
    let mut dirty = false;
    for &n in &sizes {
        let Ok(committee) = Committee::new(n) else {
            eprintln!("sparse-scale: n must be at least 4, got {n}");
            return ExitCode::from(2);
        };
        let sparse = SparseEdgeConfig::new(k, seed);
        for config in [None, Some(sparse)] {
            let row = run_one(committee, seed, config);
            println!(
                "{:>5} {:<12} {:>8} {:>9.1} {:>8} {:>7.1} {:>7.2} {:>9.3} {:>8.1} {:>7.2} {:>9} {:>8} {:>5}",
                row.n,
                row.mode,
                max_round_for(row.n),
                row.wall_secs,
                row.vertices,
                row.bytes_per_vertex,
                row.strong_per_vertex,
                row.weak_per_vertex,
                row.wire_mb,
                row.mean_latency_rounds,
                row.direct,
                row.indirect,
                row.skipped
            );
            dirty |= row.violations > 0;
        }
    }
    if dirty {
        println!("violations found");
        ExitCode::FAILURE
    } else {
        println!("audit clean");
        ExitCode::SUCCESS
    }
}
