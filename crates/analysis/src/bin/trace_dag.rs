//! `trace-dag`: run a traced DAG-Rider simulation and print the
//! observability report — per-wave commit latency (ticks, §3 asynchronous
//! time units, rounds), ordering-lag distribution, per-process traffic.
//!
//! ```text
//! trace-dag [n] [seed] [max-round] [sparse-k]
//!     # defaults: 7 processes, seed 7, 24 rounds, sparse-k 0 (dense);
//!     # sparse-k > 0 runs Clownfish-style sparse-edge mode with that k
//! ```
//!
//! Every honest node's trace is also audited against the §4–§5 invariant
//! catalogue; exit code 0 means the report printed and the audit was
//! clean, 1 means violations were found, 2 means bad usage.

use std::process::ExitCode;

use dagrider_analysis::{DagAuditor, TraceReport};
use dagrider_core::NodeConfig;
use dagrider_crypto::deal_coin_keys;
use dagrider_rbc::BrachaRbc;
use dagrider_simactor::DagRiderNode;
use dagrider_simnet::{Simulation, UniformScheduler};
use dagrider_trace::TraceRecord;
use dagrider_types::Committee;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut values = [7u64, 7, 24, 0];
    for (i, arg) in args.iter().enumerate() {
        match (i < values.len(), arg.parse::<u64>()) {
            (true, Ok(v)) => values[i] = v,
            _ => {
                eprintln!("usage: trace-dag [n] [seed] [max-round] [sparse-k]");
                return ExitCode::from(2);
            }
        }
    }
    let [n, seed, max_round, sparse_k] = values;
    let Ok(committee) = Committee::new(n as usize) else {
        eprintln!("trace-dag: n must be at least 4 (n = 3f + 1)");
        return ExitCode::from(2);
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let keys = deal_coin_keys(&committee, &mut rng);
    // Ring sized generously: a full run of R rounds emits a handful of
    // records per vertex per process, far under 64 per round per peer.
    let capacity = (max_round as usize + 1) * committee.n() * 64;
    let mut config = NodeConfig::default().with_max_round(max_round).with_trace(capacity);
    if sparse_k > 0 {
        config = config.with_sparse_edges(sparse_k as usize, seed);
    }
    let nodes: Vec<DagRiderNode<BrachaRbc>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 10), seed);
    sim.run();

    let mut merged: Vec<TraceRecord> = Vec::new();
    let mut dropped = 0u64;
    for p in committee.members() {
        merged.extend(sim.actor(p).trace_records());
        dropped += sim.actor(p).tracer().dropped();
    }
    let mode = match config.sparse_edges {
        Some(s) => format!("sparse k={}", s.k()),
        None => "dense".to_string(),
    };
    println!(
        "trace-dag: {committee}, seed {seed}, max round {max_round}, {mode}: {} records ({dropped} dropped)",
        merged.len(),
    );
    let report = TraceReport::build(&merged, sim.metrics(), sim.now());
    print!("{report}");

    let mut auditor = DagAuditor::new(committee);
    if let Some(sparse) = config.sparse_edges {
        auditor = auditor.with_sparse_edges(sparse);
    }
    let mut violations = auditor.audit_trace(&merged);
    for p in committee.members() {
        violations.extend(auditor.audit_dag(sim.actor(p).dag()));
        violations.extend(auditor.audit_commits(sim.actor(p).dag(), sim.actor(p).commits()));
    }
    if violations.is_empty() {
        println!("audit clean");
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            println!("violation: {violation}");
        }
        println!("{} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
