//! `audit-dag`: audit a serialized DAG snapshot from the command line.
//!
//! ```text
//! audit-dag <snapshot-file>             # audit; exit 0 clean, 1 violations
//! audit-dag --write-sample <file> [R]   # run a small simulation to round R
//!                                       # (default 24) and snapshot one node
//! ```
//!
//! Snapshot files use the `dagrider-types` wire codec with a `DAGSNAP1`
//! magic prefix; produce them with `--write-sample` or
//! [`DagSnapshot::capture`] on any live DAG.

use std::process::ExitCode;

use dagrider_analysis::{DagAuditor, DagSnapshot};
use dagrider_core::NodeConfig;
use dagrider_crypto::deal_coin_keys;
use dagrider_rbc::BrachaRbc;
use dagrider_simactor::DagRiderNode;
use dagrider_simnet::{Simulation, UniformScheduler};
use dagrider_types::{Committee, Decode, Encode, ProcessId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--write-sample") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: audit-dag --write-sample <file> [max-round]");
                return ExitCode::from(2);
            };
            let max_round = match args.get(2).map(|r| r.parse::<u64>()) {
                None => 24,
                Some(Ok(r)) => r,
                Some(Err(_)) => {
                    eprintln!("max-round must be an integer");
                    return ExitCode::from(2);
                }
            };
            write_sample(path, max_round)
        }
        Some(path) if !path.starts_with('-') && args.len() == 1 => audit(path),
        _ => {
            eprintln!("usage: audit-dag <snapshot-file>");
            eprintln!("       audit-dag --write-sample <file> [max-round]");
            ExitCode::from(2)
        }
    }
}

fn audit(path: &str) -> ExitCode {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("audit-dag: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let snapshot = match DagSnapshot::from_bytes(&bytes) {
        Ok(snapshot) => snapshot,
        Err(e) => {
            eprintln!("audit-dag: {path} is not a valid snapshot: {e}");
            return ExitCode::from(2);
        }
    };
    let committee = snapshot.committee();
    let violations = DagAuditor::new(committee).audit_snapshot(&snapshot);
    println!(
        "{path}: {} vertices, {committee}, pruned below {}",
        snapshot.entries().len(),
        snapshot.pruned_floor(),
    );
    if violations.is_empty() {
        println!("audit clean");
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            println!("violation: {violation}");
        }
        println!("{} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Runs a 4-process Bracha-RBC simulation to `max_round` and snapshots
/// process 0's DAG — a quick way to produce known-good audit inputs.
fn write_sample(path: &str, max_round: u64) -> ExitCode {
    let committee = Committee::new(4).expect("4 = 3f + 1");
    let seed = 7;
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = deal_coin_keys(&committee, &mut rng);
    let config = NodeConfig::default().with_max_round(max_round);
    let nodes: Vec<DagRiderNode<BrachaRbc>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 10), seed);
    sim.run();
    let snapshot = DagSnapshot::capture(sim.actor(ProcessId::new(0)).dag());
    match std::fs::write(path, snapshot.to_bytes()) {
        Ok(()) => {
            println!("wrote {} vertices to {path}", snapshot.entries().len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("audit-dag: cannot write {path}: {e}");
            ExitCode::from(2)
        }
    }
}
