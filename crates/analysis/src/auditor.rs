//! The invariant auditor: machine-checks a DAG (live or snapshotted)
//! against the full §4–§5 invariant catalogue.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dagrider_core::{CommitEvent, Dag, OrderedVertex, WaveOutcome};
use dagrider_trace::{TraceEvent, TraceRecord};
use dagrider_types::{
    BatchDigest, Committee, ProcessId, Round, SparseEdgeConfig, Vertex, VertexRef, Wave,
};

use crate::snapshot::DagSnapshot;
use crate::violation::InvariantViolation;

/// Audits DAGs against the protocol's structural and ordering invariants.
///
/// The auditor is deliberately independent of the construction code paths
/// it checks: it re-derives every invariant from the paper rather than
/// calling [`Vertex::validate`], so a bug in the shared validation logic
/// cannot hide from it.
///
/// ```
/// use dagrider_analysis::DagAuditor;
/// use dagrider_core::Dag;
/// use dagrider_types::Committee;
///
/// let committee = Committee::new(4)?;
/// let auditor = DagAuditor::new(committee);
/// assert!(auditor.audit_dag(&Dag::new(committee)).is_empty());
/// # Ok::<(), dagrider_types::CommitteeError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DagAuditor {
    committee: Committee,
    /// Sparse-edge mode under audit: vertices legitimately carry only
    /// `min(k, quorum)` strong edges and direct commits clear the
    /// adjusted `max(f + 1, n - k + 1)` threshold. `None` = dense paper rules.
    sparse: Option<SparseEdgeConfig>,
}

/// An indexed, read-only view of a vertex set: the common shape behind
/// auditing a live [`Dag`] and a [`DagSnapshot`].
struct View<'a> {
    vertices: BTreeMap<VertexRef, &'a Vertex>,
    pruned_floor: Round,
}

impl<'a> View<'a> {
    fn get(&self, reference: VertexRef) -> Option<&'a Vertex> {
        self.vertices.get(&reference).copied()
    }

    /// Whether `reference` is either present or excused by garbage
    /// collection (its round was pruned; genesis is never pruned).
    fn resolves(&self, reference: VertexRef) -> bool {
        self.vertices.contains_key(&reference)
            || (reference.round < self.pruned_floor && reference.round != Round::GENESIS)
    }

    /// Every vertex reachable from `frontier` following **all** edges of
    /// present vertices (the frontier itself included). This is the
    /// causal history of the frontier, which in a causally closed DAG is
    /// stable under further insertions — the basis of the weak-edge
    /// redundancy check.
    fn reachable_from(&self, frontier: impl IntoIterator<Item = VertexRef>) -> BTreeSet<VertexRef> {
        let mut reachable: BTreeSet<VertexRef> = frontier.into_iter().collect();
        let mut queue: VecDeque<VertexRef> = reachable.iter().copied().collect();
        while let Some(current) = queue.pop_front() {
            if let Some(vertex) = self.get(current) {
                for &edge in vertex.edges() {
                    if reachable.insert(edge) {
                        queue.push_back(edge);
                    }
                }
            }
        }
        reachable
    }
}

impl DagAuditor {
    /// Creates an auditor for the given committee (dense paper rules).
    pub fn new(committee: Committee) -> Self {
        Self { committee, sparse: None }
    }

    /// Creates an auditor for the committee `dag` was built over.
    pub fn for_dag(dag: &Dag) -> Self {
        Self::new(dag.committee())
    }

    /// Audits against sparse-edge-mode rules: the strong-edge minimum
    /// drops to `min(k, quorum)` and direct commits are checked against
    /// the adjusted sampled-support threshold (as
    /// [`InvariantViolation::SparseSupportViolation`]).
    pub fn with_sparse_edges(mut self, sparse: SparseEdgeConfig) -> Self {
        self.sparse = Some(sparse);
        self
    }

    /// The committee the auditor checks against.
    pub fn committee(&self) -> Committee {
        self.committee
    }

    /// The strong-edge minimum in force (mode-dependent).
    fn min_strong_edges(&self) -> usize {
        self.sparse.map_or(self.committee.quorum(), |s| s.min_strong_edges(&self.committee))
    }

    /// Audits a live DAG's structural invariants, plus a differential
    /// check of the closure-bitset reachability engine against the BFS
    /// oracle. The [`Dag`] container itself rules out slot duplicates, so
    /// [`InvariantViolation::DuplicateVertex`] can only arise from the
    /// snapshot path.
    pub fn audit_dag(&self, dag: &Dag) -> Vec<InvariantViolation> {
        let view = View {
            vertices: dag.iter().map(|v| (v.reference(), v)).collect(),
            pruned_floor: dag.pruned_floor(),
        };
        let mut violations = self.audit_view(&view);
        violations.extend(self.audit_reachability(dag));
        sort_report(&mut violations);
        violations
    }

    /// Differential check of the reachability engine: for every vertex,
    /// one BFS sweep per edge family gives the ground-truth reachable set
    /// (O(V·E) total, not per query), and every `path` / `strong_path`
    /// bit probe must agree with it pairwise. The engine answers commit
    /// and delivery queries (§5, Algorithm 3), so any divergence is
    /// reported as [`InvariantViolation::ReachabilityDivergence`].
    pub fn audit_reachability(&self, dag: &Dag) -> Vec<InvariantViolation> {
        let mut violations = Vec::new();
        let refs: Vec<VertexRef> = dag.iter().map(Vertex::reference).collect();
        for &from in &refs {
            for strong_only in [true, false] {
                let oracle = dag.oracle_reachable(from, strong_only);
                for &to in &refs {
                    let engine =
                        if strong_only { dag.strong_path(from, to) } else { dag.path(from, to) };
                    if engine != oracle.contains(&to) {
                        violations.push(InvariantViolation::ReachabilityDivergence {
                            from,
                            to,
                            strong_only,
                            engine,
                        });
                    }
                }
            }
        }
        violations
    }

    /// Audits a serialized snapshot: digest integrity and slot uniqueness
    /// first, then the same structural checks as [`DagAuditor::audit_dag`]
    /// over the entries (first occupant of a duplicated slot wins).
    pub fn audit_snapshot(&self, snapshot: &DagSnapshot) -> Vec<InvariantViolation> {
        let mut violations = Vec::new();
        let mut vertices: BTreeMap<VertexRef, &Vertex> = BTreeMap::new();
        let mut duplicated: BTreeSet<VertexRef> = BTreeSet::new();
        for entry in snapshot.entries() {
            let reference = entry.vertex.reference();
            if !entry.digest_matches() {
                violations.push(InvariantViolation::DigestMismatch { vertex: reference });
            }
            if vertices.insert(reference, &entry.vertex).is_some() && duplicated.insert(reference) {
                violations.push(InvariantViolation::DuplicateVertex { slot: reference });
            }
        }
        let view = View { vertices, pruned_floor: snapshot.pruned_floor() };
        violations.extend(self.audit_view(&view));
        sort_report(&mut violations);
        violations
    }

    /// Audits a process's commit record against its DAG: direct commits
    /// must be justified by a `2f + 1` strong-path quorum (Algorithm 3
    /// line 36), committed leaders' vertices must exist, and consecutive
    /// committed leaders must chain by strong paths (lines 39–43 /
    /// Lemma 1 — this is the invariant whose violation would let two
    /// processes order divergent histories).
    pub fn audit_commits(&self, dag: &Dag, commits: &[CommitEvent]) -> Vec<InvariantViolation> {
        let mut violations = Vec::new();
        // The bar direct commits must clear: the 2f + 1 quorum dense, or
        // the adjusted sampled-support threshold in sparse-edge mode.
        let quorum =
            self.sparse.map_or(self.committee.quorum(), |s| s.commit_threshold(&self.committee));
        let sparse_mode = self.sparse.is_some_and(|s| !s.is_degenerate(&self.committee));
        // Committed leaders by wave; a wave may appear twice in the record
        // (Skipped at interpretation, Indirect later) — only commits count.
        let mut committed: BTreeMap<Wave, VertexRef> = BTreeMap::new();
        for commit in commits {
            if commit.outcome == WaveOutcome::Skipped {
                continue;
            }
            let leader = VertexRef::new(commit.wave.first_round(), commit.leader);
            // Garbage collection may have dropped the evidence; nothing
            // left to check for such waves.
            if leader.round < dag.pruned_floor() {
                continue;
            }
            if !dag.contains(leader) {
                violations.push(InvariantViolation::MissingLeaderVertex {
                    wave: commit.wave,
                    leader: commit.leader,
                });
                continue;
            }
            committed.insert(commit.wave, leader);
            if commit.outcome == WaveOutcome::Direct {
                let supporters = dag
                    .round_vertices(commit.wave.last_round())
                    .values()
                    .filter(|u| dag.strong_path(u.reference(), leader))
                    .count();
                if supporters < quorum {
                    violations.push(if sparse_mode {
                        InvariantViolation::SparseSupportViolation {
                            wave: commit.wave,
                            leader,
                            supporters,
                            required: quorum,
                        }
                    } else {
                        InvariantViolation::UnjustifiedCommit {
                            wave: commit.wave,
                            leader,
                            supporters,
                            required: quorum,
                        }
                    });
                }
            }
        }
        // Adjacent committed leaders, in wave order, must be strongly
        // connected; transitivity then chains the whole sequence.
        for ((&earlier, &earlier_leader), (&later, &later_leader)) in
            committed.iter().zip(committed.iter().skip(1))
        {
            if !dag.strong_path(later_leader, earlier_leader) {
                violations.push(InvariantViolation::BrokenLeaderChain {
                    earlier,
                    earlier_leader,
                    later,
                    later_leader,
                });
            }
        }
        violations
    }

    /// Audits a crash recovery: the recovered process's DAG must pass
    /// the full structural audit, and its rebuilt ordered log must be
    /// **prefix-consistent** with the log it had delivered before the
    /// crash — same vertices at the same positions
    /// ([`InvariantViolation::RecoveryLogDivergence`]) carrying the same
    /// block bytes ([`InvariantViolation::RecoveryPayloadMismatch`]),
    /// with no vertex delivered twice. Wall-clock fields
    /// (`delivered_at`) and direct-vs-indirect bookkeeping
    /// (`committed_in_wave`) may legitimately differ across the crash
    /// and are not compared.
    ///
    /// With `expect_complete` (a node audited *after* it finished
    /// replay + rejoin sync), a recovered log shorter than the
    /// pre-crash log is a lost committed delivery
    /// ([`InvariantViolation::RecoveryLostDelivery`]). Without it (a
    /// store replayed in isolation, where losing an unsynced WAL suffix
    /// is the documented contract), a shorter-but-consistent prefix
    /// audits clean.
    pub fn audit_recovery(
        &self,
        dag: &Dag,
        pre_crash: &[OrderedVertex],
        recovered: &[OrderedVertex],
        expect_complete: bool,
    ) -> Vec<InvariantViolation> {
        let mut violations = self.audit_dag(dag);
        let mut seen: BTreeSet<VertexRef> = BTreeSet::new();
        for entry in recovered {
            if !seen.insert(entry.vertex) {
                violations.push(InvariantViolation::DuplicateOrdered { vertex: entry.vertex });
            }
        }
        for (position, (expected, found)) in pre_crash.iter().zip(recovered.iter()).enumerate() {
            if expected.vertex != found.vertex {
                violations.push(InvariantViolation::RecoveryLogDivergence {
                    position,
                    expected: expected.vertex,
                    found: found.vertex,
                });
            } else if expected.block != found.block {
                violations.push(InvariantViolation::RecoveryPayloadMismatch {
                    position,
                    vertex: expected.vertex,
                });
            }
        }
        if expect_complete && recovered.len() < pre_crash.len() {
            let position = recovered.len();
            violations.push(InvariantViolation::RecoveryLostDelivery {
                position,
                vertex: pre_crash[position].vertex,
            });
        }
        sort_report(&mut violations);
        violations
    }

    /// Audits a structured event trace (one process's or several merged):
    /// ordering must follow DAG insertion, waves resolve at most once and
    /// only after their coin flips, and each process's round counter is
    /// strictly monotone. State is tracked per process, so merged traces
    /// audit cleanly.
    ///
    /// The trace is assumed complete — audit only rings that report
    /// [`dagrider_trace::Tracer::dropped`] `== 0`, since a dropped
    /// `VertexInserted` record would falsely read as an
    /// ordered-before-delivered breach.
    pub fn audit_trace(&self, records: &[TraceRecord]) -> Vec<InvariantViolation> {
        #[derive(Default)]
        struct ProcessState {
            inserted: BTreeSet<VertexRef>,
            ordered: BTreeSet<VertexRef>,
            coins: BTreeSet<Wave>,
            committed: BTreeSet<Wave>,
            max_round: Option<Round>,
            // Batch digests this process ordered but has not (yet) resolved
            // to a stored batch; leftovers at end-of-trace are violations.
            unresolved_digests: BTreeSet<BatchDigest>,
            // Last client-admission sample (accepted, coalesced, shed,
            // queue high-water); all four are cumulative counters.
            admission: Option<[u64; 4]>,
        }
        let mut violations = Vec::new();
        let mut states: BTreeMap<ProcessId, ProcessState> = BTreeMap::new();
        let mut sorted: Vec<&TraceRecord> = records.iter().collect();
        sorted.sort_by_key(|r| (r.process, r.seq));
        for record in sorted {
            let state = states.entry(record.process).or_default();
            match record.event {
                TraceEvent::VertexInserted { vertex } => {
                    state.inserted.insert(vertex);
                }
                TraceEvent::VertexOrdered { vertex, .. } => {
                    if !state.ordered.insert(vertex) {
                        violations.push(InvariantViolation::DuplicateOrdered { vertex });
                    } else if !state.inserted.contains(&vertex) {
                        violations.push(InvariantViolation::OrderedBeforeDelivered { vertex });
                    }
                }
                TraceEvent::CoinFlipped { wave, .. } => {
                    state.coins.insert(wave);
                }
                TraceEvent::LeaderCommitted { wave, leader, .. } => {
                    if !state.committed.insert(wave) {
                        violations.push(InvariantViolation::DuplicateWaveCommit { wave, leader });
                    }
                    if !state.coins.contains(&wave) {
                        violations.push(InvariantViolation::CommitWithoutCoin {
                            wave,
                            leader: leader.source,
                        });
                    }
                }
                TraceEvent::LeaderSkipped { wave, leader } => {
                    if !state.coins.contains(&wave) {
                        violations.push(InvariantViolation::CommitWithoutCoin { wave, leader });
                    }
                }
                TraceEvent::RoundAdvanced { round } => {
                    if let Some(previous) = state.max_round {
                        if round <= previous {
                            violations
                                .push(InvariantViolation::NonMonotoneRound { round, previous });
                        }
                    }
                    state.max_round = Some(state.max_round.map_or(round, |p| p.max(round)));
                }
                TraceEvent::DigestOrdered { digest } => {
                    state.unresolved_digests.insert(digest);
                }
                TraceEvent::BatchResolved { digest, .. } => {
                    state.unresolved_digests.remove(&digest);
                }
                TraceEvent::ClientAdmission { accepted, coalesced, shed, queue_high_water } => {
                    let sample = [accepted, coalesced, shed, queue_high_water];
                    if let Some(previous) = state.admission {
                        const COUNTERS: [&str; 4] =
                            ["accepted", "coalesced", "shed", "queue_high_water"];
                        for (i, &name) in COUNTERS.iter().enumerate() {
                            if sample[i] < previous[i] {
                                violations.push(InvariantViolation::NonMonotoneAdmission {
                                    process: record.process,
                                    counter: name,
                                    value: sample[i],
                                    previous: previous[i],
                                });
                            }
                        }
                    }
                    state.admission = Some(sample);
                }
                TraceEvent::VertexCreated { .. }
                | TraceEvent::VertexRbcDelivered { .. }
                | TraceEvent::WaveReady { .. }
                | TraceEvent::Pruned { .. }
                | TraceEvent::RbcPhase { .. }
                | TraceEvent::BatchCreated { .. }
                | TraceEvent::BatchDisseminated { .. }
                | TraceEvent::BatchAcked { .. }
                | TraceEvent::BatchStored { .. }
                | TraceEvent::BatchFetchRequested { .. } => {}
            }
        }
        // A digest ordered into the log but never resolved means the
        // process's delivered payload is incomplete (fetch path failed
        // or the trace ended mid-resolution — either way, flag it).
        for (&process, state) in &states {
            for &digest in &state.unresolved_digests {
                violations.push(InvariantViolation::UnresolvedOrderedDigest { process, digest });
            }
        }
        sort_report(&mut violations);
        violations
    }

    /// The structural checks shared by the live and snapshot paths.
    fn audit_view(&self, view: &View<'_>) -> Vec<InvariantViolation> {
        let mut violations = Vec::new();
        let min_strong = self.min_strong_edges();
        for (&reference, vertex) in &view.vertices {
            if !self.committee.contains(reference.source) {
                violations.push(InvariantViolation::UnknownSource {
                    vertex: reference,
                    source: reference.source,
                });
            }
            if reference.round == Round::GENESIS {
                continue; // genesis vertices carry no edges to check
            }
            let prev = Round::new(reference.round.number() - 1);
            // Strong edges: all into round r - 1 (Algorithm 1), at least
            // 2f + 1 of them (Algorithm 2 line 25).
            for &edge in vertex.strong_edges() {
                if edge.round >= reference.round {
                    violations
                        .push(InvariantViolation::NonMonotoneEdge { vertex: reference, edge });
                } else if edge.round != prev {
                    violations
                        .push(InvariantViolation::StrongEdgeWrongRound { vertex: reference, edge });
                }
            }
            if vertex.strong_edges().len() < min_strong {
                violations.push(InvariantViolation::InsufficientStrongEdges {
                    vertex: reference,
                    found: vertex.strong_edges().len(),
                    required: min_strong,
                });
            }
            // Weak edges: strictly below round r - 1 (Algorithm 1).
            for &edge in vertex.weak_edges() {
                if edge.round >= reference.round {
                    violations
                        .push(InvariantViolation::NonMonotoneEdge { vertex: reference, edge });
                } else if edge.round >= prev {
                    violations
                        .push(InvariantViolation::WeakEdgeWrongRound { vertex: reference, edge });
                }
            }
            // Causal closure (Claim 1): every referenced vertex resolves.
            for &edge in vertex.edges() {
                if !view.resolves(edge) {
                    violations
                        .push(InvariantViolation::MissingEdgeTarget { vertex: reference, edge });
                }
            }
            // Weak-edge necessity (Algorithm 2 line 27): a correct process
            // only adds a weak edge to a vertex its strong frontier does
            // NOT already reach. Reachability from a fixed frontier is the
            // frontier's causal history, which causal closure makes stable
            // — so the creator's view and ours agree on it.
            if !vertex.weak_edges().is_empty() {
                let reachable = view.reachable_from(vertex.strong_edges().iter().copied());
                for &edge in vertex.weak_edges() {
                    if reachable.contains(&edge) {
                        violations.push(InvariantViolation::RedundantWeakEdge {
                            vertex: reference,
                            edge,
                        });
                    }
                }
            }
        }
        violations.extend(find_cycles(view));
        violations
    }
}

/// Depth-first search for cycles, reporting one violation per vertex that
/// closes a back edge. Round monotonicity already forbids cycles, but a
/// corrupted snapshot can contain them and they would otherwise hang
/// naive traversals — so the auditor detects them explicitly.
fn find_cycles(view: &View<'_>) -> Vec<InvariantViolation> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<VertexRef, Color> =
        view.vertices.keys().map(|&r| (r, Color::White)).collect();
    let mut on_cycle: BTreeSet<VertexRef> = BTreeSet::new();
    for &start in view.vertices.keys() {
        if color[&start] != Color::White {
            continue;
        }
        // Stack of (vertex, edges not yet explored).
        let mut stack: Vec<(VertexRef, Vec<VertexRef>)> = Vec::new();
        color.insert(start, Color::Gray);
        stack.push((start, edges_of(view, start)));
        while let Some((current, pending)) = stack.last_mut() {
            let Some(edge) = pending.pop() else {
                color.insert(*current, Color::Black);
                stack.pop();
                continue;
            };
            match color.get(&edge) {
                Some(Color::White) => {
                    color.insert(edge, Color::Gray);
                    stack.push((edge, edges_of(view, edge)));
                }
                Some(Color::Gray) => {
                    on_cycle.insert(edge); // back edge: `edge` is on a cycle
                }
                Some(Color::Black) | None => {}
            }
        }
    }
    on_cycle.into_iter().map(|vertex| InvariantViolation::CycleDetected { vertex }).collect()
}

fn edges_of(view: &View<'_>, reference: VertexRef) -> Vec<VertexRef> {
    view.get(reference).map_or_else(Vec::new, |v| v.edges().copied().collect())
}

/// Orders a report by anchor round, then textual form — stable and
/// readable regardless of discovery order.
fn sort_report(violations: &mut [InvariantViolation]) {
    violations.sort_by_key(|v| (v.round(), v.to_string()));
}
