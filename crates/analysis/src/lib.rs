//! Protocol invariant auditing for the DAG-Rider reproduction.
//!
//! DAG-Rider's safety argument (§4–§5 of *All You Need is DAG*) rests on a
//! small catalogue of structural invariants — the DAG is acyclic and
//! round-monotone, every vertex carries a `2f + 1` strong-edge quorum into
//! the previous round, weak edges point only to otherwise-unreachable
//! orphans, reliable broadcast rules out slot duplicates — plus the
//! ordering layer's commit rule and leader chain. This crate re-derives
//! each invariant from the paper and machine-checks it, independently of
//! the code paths that are supposed to maintain it:
//!
//! * [`DagAuditor`] checks a live [`Dag`](dagrider_core::Dag), a
//!   serialized [`DagSnapshot`], or a commit record, returning a typed
//!   [`InvariantViolation`] (with paper citation) per breach;
//! * [`AuditedSimulation`] wires the auditor into simnet runs — debug
//!   builds (or the `force-audit` feature) audit every honest process
//!   after the run;
//! * [`TraceReport`] digests structured event traces into per-wave commit
//!   latencies (ticks, §3 asynchronous time units, rounds), ordering-lag
//!   distributions, and per-process traffic;
//! * the `audit-dag` binary audits snapshot files and the `trace-dag`
//!   binary prints trace reports from the command line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auditor;
pub mod report;
pub mod snapshot;
pub mod verify;
pub mod violation;

pub use auditor::DagAuditor;
pub use report::{LagStats, ProcessTraffic, TraceReport, WaveLatency};
pub use snapshot::{DagSnapshot, SnapshotEntry};
pub use verify::{AuditReport, AuditedSimulation};
pub use violation::InvariantViolation;
