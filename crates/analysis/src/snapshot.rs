//! Serialized DAG snapshots: a DAG's vertices plus per-vertex SHA-256
//! digests, in the `dagrider-types` wire codec.
//!
//! A snapshot is what one process's DAG looks like when it crosses a trust
//! boundary — written to disk for the `audit-dag` binary, shipped to a
//! debugger, attached to a bug report. Unlike the in-memory [`Dag`], a
//! snapshot makes **no** structural promises: the bytes may come from a
//! faulty process or a corrupted file, which is exactly why
//! [`DagAuditor`](crate::DagAuditor) exists.

use dagrider_core::Dag;
use dagrider_crypto::{sha256, Digest};
use dagrider_types::{Committee, Decode, DecodeError, Encode, Round, Vertex, VertexRef};

/// Magic prefix identifying a snapshot file (version-suffixed).
const MAGIC: [u8; 8] = *b"DAGSNAP1";

/// One vertex of a snapshot together with the SHA-256 digest of its
/// encoding, recorded at capture time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// `sha256(vertex.to_bytes())` as recorded by the capturing process.
    pub digest: Digest,
    /// The vertex itself.
    pub vertex: Vertex,
}

impl SnapshotEntry {
    /// Whether the recorded digest matches the vertex bytes.
    pub fn digest_matches(&self) -> bool {
        sha256(self.vertex.to_bytes()) == self.digest
    }
}

impl Encode for SnapshotEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.digest.encode(buf);
        self.vertex.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.digest.encoded_len() + self.vertex.encoded_len()
    }
}

impl Decode for SnapshotEntry {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self { digest: Digest::decode(buf)?, vertex: Vertex::decode(buf)? })
    }
}

/// A serialized copy of one process's DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagSnapshot {
    committee: Committee,
    pruned_floor: Round,
    entries: Vec<SnapshotEntry>,
}

impl DagSnapshot {
    /// Captures `dag` (every retained vertex, genesis included), digesting
    /// each vertex's encoding.
    pub fn capture(dag: &Dag) -> Self {
        Self {
            committee: dag.committee(),
            pruned_floor: dag.pruned_floor(),
            entries: dag
                .iter()
                .map(|v| SnapshotEntry { digest: sha256(v.to_bytes()), vertex: v.clone() })
                .collect(),
        }
    }

    /// Builds a snapshot from raw parts (used by tests to craft
    /// adversarial snapshots).
    pub fn from_parts(
        committee: Committee,
        pruned_floor: Round,
        entries: Vec<SnapshotEntry>,
    ) -> Self {
        Self { committee, pruned_floor, entries }
    }

    /// The committee the capturing process belonged to.
    pub fn committee(&self) -> Committee {
        self.committee
    }

    /// The capturing DAG's garbage-collection floor: edge targets below
    /// this round are expected to be absent.
    pub fn pruned_floor(&self) -> Round {
        self.pruned_floor
    }

    /// The snapshot's entries, in capture order.
    pub fn entries(&self) -> &[SnapshotEntry] {
        &self.entries
    }

    /// Mutable access to the entries (for adversarial test mutations).
    pub fn entries_mut(&mut self) -> &mut Vec<SnapshotEntry> {
        &mut self.entries
    }

    /// References of all entries, in capture order.
    pub fn references(&self) -> impl Iterator<Item = VertexRef> + '_ {
        self.entries.iter().map(|e| e.vertex.reference())
    }
}

impl Encode for DagSnapshot {
    fn encode(&self, buf: &mut Vec<u8>) {
        MAGIC.encode(buf);
        (self.committee.n() as u32).encode(buf);
        self.pruned_floor.encode(buf);
        self.entries.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        MAGIC.encoded_len()
            + (self.committee.n() as u32).encoded_len()
            + self.pruned_floor.encoded_len()
            + self.entries.encoded_len()
    }
}

impl Decode for DagSnapshot {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let magic = <[u8; 8]>::decode(buf)?;
        if magic != MAGIC {
            return Err(DecodeError::Invalid("not a DAG snapshot (bad magic)"));
        }
        let n = u32::decode(buf)?;
        let committee = Committee::new(n as usize)
            .map_err(|_| DecodeError::Invalid("snapshot committee size is not 3f + 1"))?;
        Ok(Self {
            committee,
            pruned_floor: Round::decode(buf)?,
            entries: Vec::<SnapshotEntry>::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dag() -> Dag {
        let committee = Committee::new(4).expect("4 = 3f + 1");
        Dag::new(committee)
    }

    #[test]
    fn capture_includes_genesis() {
        let snapshot = DagSnapshot::capture(&sample_dag());
        assert_eq!(snapshot.entries().len(), 4);
        assert!(snapshot.entries().iter().all(SnapshotEntry::digest_matches));
    }

    #[test]
    fn codec_roundtrip() {
        let snapshot = DagSnapshot::capture(&sample_dag());
        let bytes = snapshot.to_bytes();
        assert_eq!(bytes.len(), snapshot.encoded_len());
        assert_eq!(DagSnapshot::from_bytes(&bytes).expect("decode"), snapshot);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut bytes = DagSnapshot::capture(&sample_dag()).to_bytes();
        bytes[0] ^= 0xff;
        assert!(matches!(
            DagSnapshot::from_bytes(&bytes),
            Err(DecodeError::Invalid("not a DAG snapshot (bad magic)"))
        ));
    }

    #[test]
    fn decode_rejects_bad_committee_size() {
        let snapshot = DagSnapshot::capture(&sample_dag());
        let mut bytes = Vec::new();
        MAGIC.encode(&mut bytes);
        3u32.encode(&mut bytes); // 3 is below the minimum committee size
        snapshot.pruned_floor.encode(&mut bytes);
        snapshot.entries.encode(&mut bytes);
        assert!(matches!(DagSnapshot::from_bytes(&bytes), Err(DecodeError::Invalid(_))));
    }
}
