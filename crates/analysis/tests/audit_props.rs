//! Auditor soundness and completeness tests.
//!
//! Two directions, mirroring what an auditor must get right:
//!
//! * **No false positives** — property tests run honest DAG-Rider
//!   simulations across seeds, schedulers, committee sizes, and crash
//!   faults, and require every audit to come back clean.
//! * **No false negatives** — directed adversarial tests take a known-good
//!   DAG (or build one by hand), apply exactly one corruption per
//!   violation class, and assert the auditor reports that exact variant.

use dagrider_analysis::{
    AuditedSimulation, DagAuditor, DagSnapshot, InvariantViolation, SnapshotEntry,
};
use dagrider_core::{CommitEvent, Dag, NodeConfig, WaveOutcome};
use dagrider_crypto::{deal_coin_keys, sha256};
use dagrider_rbc::BrachaRbc;
use dagrider_simactor::DagRiderNode;
use dagrider_simnet::{Simulation, Time, UniformScheduler};
use dagrider_types::{
    Block, Committee, Decode, Encode, ProcessId, Round, SeqNum, Vertex, VertexBuilder, VertexRef,
    Wave,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn honest_sim(
    n: usize,
    seed: u64,
    max_round: u64,
    max_delay: u64,
) -> Simulation<DagRiderNode<BrachaRbc>, UniformScheduler> {
    let committee = Committee::new(n).expect("test committee sizes are 3f + 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = deal_coin_keys(&committee, &mut rng);
    let config = NodeConfig::default().with_max_round(max_round);
    let nodes: Vec<DagRiderNode<BrachaRbc>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    Simulation::new(committee, nodes, UniformScheduler::new(1, max_delay), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every honest run — any seed, delay spread, and committee size —
    /// must audit clean on every process, DAG and commit record alike.
    #[test]
    fn honest_runs_audit_clean(seed in 0u64..10_000, max_delay in 2u64..20, big in proptest::bool::ANY) {
        let n = if big { 7 } else { 4 };
        let mut sim = honest_sim(n, seed, 16, max_delay);
        let report = sim.run_audited();
        prop_assert!(report.audited(), "tests build with debug assertions");
        report.assert_clean();
    }

    /// Crash faults (up to f, mid-run, dropping in-flight messages) leave
    /// the survivors' DAGs and commit records invariant-clean.
    #[test]
    fn crashed_runs_audit_clean(seed in 0u64..10_000, victim in 0u32..4, after in 1u64..200) {
        let mut sim = honest_sim(4, seed, 16, 10);
        sim.initialize();
        sim.run_until(after, |_| false);
        sim.crash(ProcessId::new(victim), true);
        sim.run();
        sim.audit_honest().assert_clean();
    }

    /// Snapshots of honest DAGs survive the codec round trip and audit
    /// clean on the snapshot path too (digest checks included).
    #[test]
    fn honest_snapshots_audit_clean(seed in 0u64..10_000) {
        let mut sim = honest_sim(4, seed, 12, 10);
        sim.run();
        let auditor = DagAuditor::new(sim.committee());
        for p in sim.committee().members() {
            let snapshot = DagSnapshot::capture(sim.actor(p).dag());
            let decoded = DagSnapshot::from_bytes(&snapshot.to_bytes()).expect("roundtrip");
            prop_assert_eq!(auditor.audit_snapshot(&decoded), Vec::new());
        }
    }
}

// ---------------------------------------------------------------------------
// Directed adversarial mutations: one corruption, one expected variant.
// ---------------------------------------------------------------------------

/// A known-good 4-process snapshot (node 0's DAG after an honest run) that
/// each adversarial test corrupts in exactly one way.
fn base_snapshot() -> DagSnapshot {
    let mut sim = honest_sim(4, 42, 12, 10);
    sim.run();
    let snapshot = DagSnapshot::capture(sim.actor(ProcessId::new(0)).dag());
    assert_eq!(
        DagAuditor::new(snapshot.committee()).audit_snapshot(&snapshot),
        Vec::new(),
        "the base snapshot must audit clean before mutation"
    );
    snapshot
}

fn audit(snapshot: &DagSnapshot) -> Vec<InvariantViolation> {
    DagAuditor::new(snapshot.committee()).audit_snapshot(snapshot)
}

/// The highest round fully present in the snapshot, and that round's
/// references — the usual attachment point for crafted vertices.
fn full_round(snapshot: &DagSnapshot) -> (Round, Vec<VertexRef>) {
    let mut by_round: std::collections::BTreeMap<Round, Vec<VertexRef>> = Default::default();
    for reference in snapshot.references() {
        by_round.entry(reference.round).or_default().push(reference);
    }
    by_round
        .into_iter()
        .rfind(|(_, refs)| refs.len() == snapshot.committee().n())
        .expect("an honest run fills at least one round")
}

fn entry_of(vertex: Vertex) -> SnapshotEntry {
    SnapshotEntry { digest: sha256(vertex.to_bytes()), vertex }
}

fn craft(
    source: u32,
    round: Round,
    strong: impl IntoIterator<Item = VertexRef>,
    weak: impl IntoIterator<Item = VertexRef>,
) -> Vertex {
    VertexBuilder::new(
        ProcessId::new(source),
        round,
        Block::empty(ProcessId::new(source), SeqNum::new(99)),
    )
    .strong_edges(strong)
    .weak_edges(weak)
    .build_unchecked()
}

#[test]
fn detects_digest_mismatch() {
    let mut snapshot = base_snapshot();
    let entry = snapshot.entries_mut().last_mut().expect("non-empty snapshot");
    let tampered = entry.vertex.reference();
    entry.digest = sha256(b"not the vertex bytes");
    assert_eq!(audit(&snapshot), vec![InvariantViolation::DigestMismatch { vertex: tampered }]);
}

#[test]
fn detects_duplicate_vertex() {
    let mut snapshot = base_snapshot();
    let copy = snapshot.entries()[4].clone(); // a non-genesis entry
    let slot = copy.vertex.reference();
    snapshot.entries_mut().push(copy);
    assert_eq!(audit(&snapshot), vec![InvariantViolation::DuplicateVertex { slot }]);
}

#[test]
fn detects_non_monotone_edge() {
    let mut snapshot = base_snapshot();
    let (round, refs) = full_round(&snapshot);
    let next = Round::new(round.number() + 1);
    // Two crafted vertices in the same (new) round; `bad` takes a weak
    // edge sideways to its contemporary `peer` — round not strictly
    // decreasing, the defining non-monotone shape.
    let peer = craft(1, next, refs.clone(), []);
    let bad = craft(0, next, refs, [peer.reference()]);
    let (bad_ref, peer_ref) = (bad.reference(), peer.reference());
    snapshot.entries_mut().extend([entry_of(peer), entry_of(bad)]);
    assert_eq!(
        audit(&snapshot),
        vec![InvariantViolation::NonMonotoneEdge { vertex: bad_ref, edge: peer_ref }]
    );
}

#[test]
fn detects_strong_edge_wrong_round() {
    let mut snapshot = base_snapshot();
    let (round, refs) = full_round(&snapshot);
    let two_below = snapshot
        .references()
        .find(|r| r.round.number() + 2 == round.number() + 1)
        .expect("round - 1 is populated");
    // A strong edge skipping a round: DAG-Rider strong edges land in
    // round r - 1 exclusively (Algorithm 1).
    let bad = craft(0, Round::new(round.number() + 1), refs.into_iter().chain([two_below]), []);
    let bad_ref = bad.reference();
    snapshot.entries_mut().push(entry_of(bad));
    assert_eq!(
        audit(&snapshot),
        vec![InvariantViolation::StrongEdgeWrongRound { vertex: bad_ref, edge: two_below }]
    );
}

#[test]
fn detects_weak_edge_wrong_round() {
    let mut snapshot = base_snapshot();
    let (round, mut refs) = full_round(&snapshot);
    // Weak edges must reach strictly below round r - 1; pointing one at
    // round r - 1 (a vertex deliberately left out of the strong frontier,
    // so the redundancy rule cannot fire instead) is the violation.
    let sideways = refs.pop().expect("full round");
    let bad = craft(0, Round::new(round.number() + 1), refs, [sideways]);
    let bad_ref = bad.reference();
    snapshot.entries_mut().push(entry_of(bad));
    assert_eq!(
        audit(&snapshot),
        vec![InvariantViolation::WeakEdgeWrongRound { vertex: bad_ref, edge: sideways }]
    );
}

#[test]
fn detects_insufficient_strong_edges() {
    let mut snapshot = base_snapshot();
    let (round, refs) = full_round(&snapshot);
    let bad = craft(0, Round::new(round.number() + 1), refs.into_iter().take(2), []);
    let bad_ref = bad.reference();
    snapshot.entries_mut().push(entry_of(bad));
    assert_eq!(
        audit(&snapshot),
        vec![InvariantViolation::InsufficientStrongEdges {
            vertex: bad_ref,
            found: 2,
            required: 3
        }]
    );
}

#[test]
fn detects_missing_edge_target() {
    let mut snapshot = base_snapshot();
    // Remove a vertex some strong edge provably targets, so at least one
    // referrer is left dangling.
    let victim = snapshot
        .entries()
        .iter()
        .flat_map(|e| e.vertex.strong_edges().iter().copied())
        .find(|r| r.round != Round::GENESIS)
        .expect("strong edges target non-genesis vertices");
    snapshot.entries_mut().retain(|e| e.vertex.reference() != victim);
    // Everything still present that referenced the removed vertex now has
    // a dangling edge; causal closure (Claim 1) is exactly what broke.
    let violations = audit(&snapshot);
    assert!(!violations.is_empty(), "{victim} had referrers");
    assert!(
        violations.iter().all(
            |v| matches!(v, InvariantViolation::MissingEdgeTarget { edge, .. } if *edge == victim)
        ),
        "unexpected report: {violations:?}"
    );
}

#[test]
fn detects_redundant_weak_edge() {
    let mut snapshot = base_snapshot();
    let (round, refs) = full_round(&snapshot);
    let deep = snapshot
        .references()
        .find(|r| r.round.number() + 3 == round.number() + 1)
        .expect("three rounds below is populated");
    // `deep` is already in the causal history of the strong frontier, so
    // a correct process would never spend a weak edge on it
    // (Algorithm 2 line 27 only links orphans).
    let bad = craft(0, Round::new(round.number() + 1), refs, [deep]);
    let bad_ref = bad.reference();
    snapshot.entries_mut().push(entry_of(bad));
    assert_eq!(
        audit(&snapshot),
        vec![InvariantViolation::RedundantWeakEdge { vertex: bad_ref, edge: deep }]
    );
}

#[test]
fn detects_unknown_source() {
    let mut snapshot = base_snapshot();
    let (round, refs) = full_round(&snapshot);
    let bad = craft(7, Round::new(round.number() + 1), refs, []);
    let (bad_ref, source) = (bad.reference(), ProcessId::new(7));
    snapshot.entries_mut().push(entry_of(bad));
    assert_eq!(
        audit(&snapshot),
        vec![InvariantViolation::UnknownSource { vertex: bad_ref, source }]
    );
}

#[test]
fn detects_cycles() {
    let mut snapshot = base_snapshot();
    let (round, refs) = full_round(&snapshot);
    let next = Round::new(round.number() + 1);
    // Mutually referencing vertices. The non-monotone edges are reported
    // too (a cycle necessarily contains one), but the auditor must also
    // name the cycle itself — corrupted snapshots with cycles would
    // otherwise hang naive causal-history walks.
    let a_ref = VertexRef::new(next, ProcessId::new(0));
    let b = craft(1, next, refs.clone().into_iter().chain([a_ref]), []);
    let a = craft(0, next, refs.into_iter().chain([b.reference()]), []);
    snapshot.entries_mut().extend([entry_of(a), entry_of(b)]);
    let violations = audit(&snapshot);
    assert!(
        violations.iter().any(|v| matches!(v, InvariantViolation::CycleDetected { .. })),
        "cycle not reported: {violations:?}"
    );
}

// ---------------------------------------------------------------------------
// Commit-record violations, over hand-built DAGs with known connectivity.
// ---------------------------------------------------------------------------

/// A fully synchronous DAG over `rounds` rounds where every vertex's
/// strong edges are all of the previous round **except** `avoided`: no
/// strong path ever leads to `avoided`, which the commit tests exploit.
fn dag_avoiding(rounds: u64, avoided: VertexRef) -> Dag {
    let committee = Committee::new(4).expect("4 = 3f + 1");
    let mut dag = Dag::new(committee);
    for round in 1..=rounds {
        let round = Round::new(round);
        let prev = Round::new(round.number() - 1);
        let targets: Vec<VertexRef> = committee
            .members()
            .map(|p| VertexRef::new(prev, p))
            .filter(|&r| r != avoided)
            .collect();
        for p in committee.members() {
            let vertex = VertexBuilder::new(p, round, Block::empty(p, SeqNum::new(0)))
                .strong_edges(targets.clone())
                .build(&committee)
                .expect("crafted vertices are well-formed");
            assert!(dag.insert(vertex));
        }
    }
    dag
}

fn commit(wave: u64, leader: u32, outcome: WaveOutcome) -> CommitEvent {
    CommitEvent { wave: Wave::new(wave), leader: ProcessId::new(leader), outcome, at: Time::new(0) }
}

#[test]
fn detects_missing_leader_vertex() {
    let avoided = VertexRef::new(Round::new(1), ProcessId::new(0));
    let dag = dag_avoiding(8, avoided);
    let auditor = DagAuditor::for_dag(&dag);
    // Wave 3's first round (round 9) was never built.
    let violations = auditor.audit_commits(&dag, &[commit(3, 1, WaveOutcome::Direct)]);
    assert_eq!(
        violations,
        vec![InvariantViolation::MissingLeaderVertex {
            wave: Wave::new(3),
            leader: ProcessId::new(1)
        }]
    );
}

#[test]
fn detects_unjustified_commit() {
    // Process 0's round-1 vertex exists but nothing links back to it:
    // zero supporters, far short of the 2f + 1 the commit rule
    // (Algorithm 3 line 36) demands.
    let avoided = VertexRef::new(Round::new(1), ProcessId::new(0));
    let dag = dag_avoiding(4, avoided);
    let auditor = DagAuditor::for_dag(&dag);
    let violations = auditor.audit_commits(&dag, &[commit(1, 0, WaveOutcome::Direct)]);
    assert_eq!(
        violations,
        vec![InvariantViolation::UnjustifiedCommit {
            wave: Wave::new(1),
            leader: avoided,
            supporters: 0,
            required: 3
        }]
    );
}

#[test]
fn detects_sparse_support_violation_in_doctored_trace() {
    // Sparse-mode twin of `detects_unjustified_commit`: the same doctored
    // commit record — a direct commit of a leader nothing links back to —
    // must be reported as a `SparseSupportViolation` naming the adjusted
    // `max(f + 1, n − k + 1)` threshold when the auditor runs with the
    // cluster's sparse config, and as a plain `UnjustifiedCommit` when it
    // runs dense.
    let avoided = VertexRef::new(Round::new(1), ProcessId::new(0));
    let dag = dag_avoiding(4, avoided);
    // n = 4, k = 2: threshold max(f + 1, n − k + 1) = 3.
    let sparse = dagrider_types::SparseEdgeConfig::new(2, 7);
    let auditor = DagAuditor::for_dag(&dag).with_sparse_edges(sparse);
    let doctored = [commit(1, 0, WaveOutcome::Direct)];
    assert_eq!(
        auditor.audit_commits(&dag, &doctored),
        vec![InvariantViolation::SparseSupportViolation {
            wave: Wave::new(1),
            leader: avoided,
            supporters: 0,
            required: 3
        }]
    );
    // The dense auditor classifies the same corruption under the paper's
    // rule, so the two violation classes stay distinguishable in reports.
    assert!(matches!(
        DagAuditor::for_dag(&dag).audit_commits(&dag, &doctored)[..],
        [InvariantViolation::UnjustifiedCommit { .. }]
    ));
    // Soundness: a genuinely supported commit passes the sparse check —
    // every round-4 vertex retains a strong path to wave 1's leader p1.
    let honest = [commit(1, 1, WaveOutcome::Direct)];
    assert_eq!(auditor.audit_commits(&dag, &honest), Vec::new());
}

#[test]
fn detects_broken_leader_chain() {
    // Indirect outcomes skip the supporter check, isolating the chain
    // rule: wave 2's leader has no strong path to wave 1's, which is the
    // total-order-breaking shape (Algorithm 3 lines 39–43 / Lemma 1).
    let avoided = VertexRef::new(Round::new(1), ProcessId::new(0));
    let dag = dag_avoiding(8, avoided);
    let auditor = DagAuditor::for_dag(&dag);
    let commits = [commit(1, 0, WaveOutcome::Indirect), commit(2, 1, WaveOutcome::Indirect)];
    let violations = auditor.audit_commits(&dag, &commits);
    assert_eq!(
        violations,
        vec![InvariantViolation::BrokenLeaderChain {
            earlier: Wave::new(1),
            earlier_leader: avoided,
            later: Wave::new(2),
            later_leader: VertexRef::new(Round::new(5), ProcessId::new(1)),
        }]
    );
}

#[test]
fn honest_commit_records_audit_clean_against_peer_dags() {
    // Cross-check: any process's commit record must also be justified by
    // any other process's DAG once both have quiesced (the agreement
    // property the chain rule protects).
    let mut sim = honest_sim(4, 3, 16, 10);
    sim.run();
    let auditor = DagAuditor::new(sim.committee());
    for p in sim.committee().members() {
        for q in sim.committee().members() {
            let violations = auditor.audit_commits(sim.actor(q).dag(), sim.actor(p).commits());
            assert_eq!(violations, Vec::new(), "{p} commits vs {q} DAG");
        }
    }
}

#[test]
fn detects_reachability_divergence() {
    // Flip one closure bit via the fault-injection hook: the engine now
    // denies a strong path the BFS oracle can still traverse, and the
    // differential audit must catch exactly that disagreement.
    let avoided = VertexRef::new(Round::new(1), ProcessId::new(3));
    let mut dag = dag_avoiding(4, avoided);
    let auditor = DagAuditor::for_dag(&dag);
    assert_eq!(auditor.audit_dag(&dag), Vec::new(), "clean before poisoning");

    let from = VertexRef::new(Round::new(2), ProcessId::new(0));
    let to = VertexRef::new(Round::new(1), ProcessId::new(1));
    assert!(dag.poison_reachability_for_tests(from, to, true));
    let violations = auditor.audit_dag(&dag);
    assert_eq!(
        violations,
        vec![InvariantViolation::ReachabilityDivergence {
            from,
            to,
            strong_only: true,
            engine: false
        }]
    );
    // The hook toggles, so a second poke restores equivalence.
    assert!(dag.poison_reachability_for_tests(from, to, true));
    assert_eq!(auditor.audit_dag(&dag), Vec::new());
}
