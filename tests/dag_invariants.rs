//! Cross-stack invariants of the DAG itself, checked on DAGs produced by
//! *real protocol runs* (not hand-built fixtures): the structural claims
//! of §4 and the lemmas of §6 must hold in every reachable state.

use dag_rider::core::NodeConfig;
use dag_rider::crypto::deal_coin_keys;
use dag_rider::rbc::BrachaRbc;
use dag_rider::simactor::DagRiderNode;
use dag_rider::simnet::{Simulation, UniformScheduler};
use dag_rider::types::{Committee, ProcessId, Round, VertexRef, Wave, WAVE_LENGTH};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

type Node = DagRiderNode<BrachaRbc>;

fn run(n: usize, seed: u64, max_round: u64) -> Simulation<Node, UniformScheduler> {
    let committee = Committee::new(n).unwrap();
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(seed));
    let config = NodeConfig::default().with_max_round(max_round);
    let nodes = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 10), seed);
    sim.run();
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Structural invariants of every vertex in every correct process's
    /// DAG: ≥ 2f+1 strong edges into the previous round, weak edges
    /// strictly lower, no equivocation, causal closure.
    #[test]
    fn dag_structure(seed in 0u64..10_000) {
        let sim = run(4, seed, 16);
        let committee = sim.committee();
        for p in committee.members() {
            let dag = sim.actor(p).dag();
            for vertex in dag.iter() {
                if vertex.round() == Round::GENESIS {
                    continue;
                }
                prop_assert!(vertex.validate(&committee).is_ok());
                // Causal closure (Claim 1): every edge target is present.
                prop_assert!(dag.has_all_edges_of(vertex));
            }
            // At most one vertex per (round, source) is enforced by the
            // map structure; spot-check counts per round.
            for r in 0..=dag.highest_round().number() {
                prop_assert!(dag.round_size(Round::new(r)) <= committee.n());
            }
        }
    }

    /// Lemma 2 (common core): in every completed wave, ≥ 2f+1 round-4
    /// vertices each strongly reach ≥ 2f+1 common round-1 vertices.
    #[test]
    fn lemma2_common_core(seed in 0u64..10_000) {
        let sim = run(4, seed, 16);
        let committee = sim.committee();
        let quorum = committee.quorum();
        let dag = sim.actor(ProcessId::new(0)).dag();
        let completed_waves = dag.highest_round().number() / WAVE_LENGTH;
        for w in 1..=completed_waves {
            let wave = Wave::new(w);
            let last = dag.round_vertices(wave.last_round());
            if last.len() < quorum {
                continue; // wave not complete at this process
            }
            // For each round-1 vertex, count round-4 supporters.
            let firsts: Vec<VertexRef> = dag
                .round_vertices(wave.first_round())
                .values()
                .map(|v| v.reference())
                .collect();
            let well_supported = firsts
                .iter()
                .filter(|&&v1| {
                    last.values().filter(|v4| dag.strong_path(v4.reference(), v1)).count()
                        >= quorum
                })
                .count();
            prop_assert!(
                well_supported >= quorum,
                "wave {w}: only {well_supported} round-1 vertices have 2f+1 strong support"
            );
        }
    }

    /// Lemma 1 consequence: once a wave leader is committed anywhere, the
    /// leader of every later committed wave strongly reaches it.
    #[test]
    fn lemma1_leader_chain(seed in 0u64..10_000) {
        let sim = run(4, seed, 20);
        for p in sim.committee().members() {
            let node = sim.actor(p);
            let dag = node.dag();
            // Gather (wave, leader vertex) for every committed wave.
            let mut committed: Vec<(u64, VertexRef)> = node
                .commits()
                .iter()
                .filter(|c| c.outcome != dag_rider::core::WaveOutcome::Skipped)
                .map(|c| (c.wave.number(), VertexRef::new(c.wave.first_round(), c.leader)))
                .collect();
            committed.sort();
            committed.dedup();
            for pair in committed.windows(2) {
                let (_, earlier) = pair[0];
                let (_, later) = pair[1];
                prop_assert!(
                    dag.strong_path(later, earlier),
                    "{p}: committed leader {later} has no strong path to {earlier}"
                );
            }
        }
    }

    /// Commit monotonicity: decidedWave never regresses, and the ordered
    /// log's commit waves are non-decreasing.
    #[test]
    fn commit_waves_monotone(seed in 0u64..10_000) {
        let sim = run(4, seed, 20);
        for p in sim.committee().members() {
            let log = sim.actor(p).ordered();
            for w in log.windows(2) {
                prop_assert!(w[0].committed_in_wave <= w[1].committed_in_wave);
            }
        }
    }
}

#[test]
fn all_processes_converge_to_equal_dags_after_quiescence() {
    let sim = run(4, 31, 12);
    let reference = sim.actor(ProcessId::new(0)).dag();
    for p in sim.committee().members() {
        let dag = sim.actor(p).dag();
        // Agreement of the broadcast layer: after quiescence all DAGs hold
        // the same vertex set (compare by refs).
        let refs: Vec<VertexRef> = dag.iter().map(|v| v.reference()).collect();
        let expected: Vec<VertexRef> = reference.iter().map(|v| v.reference()).collect();
        assert_eq!(refs, expected, "{p}'s DAG differs");
    }
}
