//! Integration tests for the paper's **Validity** property (every correct
//! process's proposal is eventually ordered — the weak-edge mechanism) and
//! **chain quality** (§3: any prefix of `(2f+1)·r` ordered vertices holds
//! ≥ `(f+1)·r` from correct processes).

use dag_rider::core::NodeConfig;
use dag_rider::crypto::deal_coin_keys;
use dag_rider::rbc::{byzantine::SilentActor, BrachaRbc};
use dag_rider::simactor::DagRiderNode;
use dag_rider::simnet::{Either, Simulation, TargetedScheduler, Time, UniformScheduler};
use dag_rider::types::{Block, Committee, ProcessId, SeqNum, Transaction};
use rand::rngs::StdRng;
use rand::SeedableRng;

type Node = DagRiderNode<BrachaRbc>;

/// A starved-but-correct process's block is ordered everywhere once the
/// adversary relents (weak edges carry it into later causal histories).
#[test]
fn validity_starved_process_block_is_ordered() {
    for seed in [3u64, 5, 8] {
        let committee = Committee::new(4).unwrap();
        let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(seed));
        let config = NodeConfig::default().with_max_round(32);
        let victim = ProcessId::new(2);
        let mut nodes: Vec<Node> = committee
            .members()
            .zip(keys)
            .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
            .collect();
        let marker = Transaction::synthetic(0xBEEF ^ seed, 24);
        nodes[victim.as_usize()].a_bcast(Block::new(victim, SeqNum::new(1), vec![marker.clone()]));

        let scheduler = TargetedScheduler::new(UniformScheduler::new(1, 6), [victim], 200)
            .with_window(Time::ZERO, Time::new(200));
        let mut sim = Simulation::new(committee, nodes, scheduler, seed);
        sim.run();

        for p in committee.members() {
            let ordered =
                sim.actor(p).ordered().iter().any(|o| o.block.transactions().contains(&marker));
            assert!(ordered, "seed {seed}: {p} never ordered the starved process's block");
        }
    }
}

/// Without starvation, every correct process's early block lands quickly —
/// and in the same position everywhere.
#[test]
fn validity_all_client_blocks_ordered_in_same_position() {
    let committee = Committee::new(4).unwrap();
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(77));
    let config = NodeConfig::default().with_max_round(20);
    let mut nodes: Vec<Node> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    let markers: Vec<Transaction> = (0..4).map(|i| Transaction::synthetic(1000 + i, 16)).collect();
    for (node, marker) in nodes.iter_mut().zip(&markers) {
        let me = node.me();
        node.a_bcast(Block::new(me, SeqNum::new(1), vec![marker.clone()]));
    }
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 10), 77);
    sim.run();

    let position = |p: ProcessId, marker: &Transaction| {
        sim.actor(p).ordered().iter().position(|o| o.block.transactions().contains(marker))
    };
    for marker in &markers {
        let reference = position(ProcessId::new(0), marker);
        assert!(reference.is_some(), "block missing at p0");
        for p in committee.members() {
            assert_eq!(position(p, marker), reference, "{p} placed a block differently");
        }
    }
}

/// Chain quality: with `f` Byzantine (silent) processes, every prefix of
/// the ordered log is overwhelmingly from correct processes — trivially
/// here (a mute process contributes nothing), and more interestingly the
/// per-source counts of ordered vertices stay balanced across the correct
/// processes (the paper's fairness argument: one vertex per process per
/// round).
#[test]
fn chain_quality_balanced_across_correct_processes() {
    let committee = Committee::new(7).unwrap();
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(5));
    let config = NodeConfig::default().with_max_round(20);
    let byzantine: Vec<ProcessId> = vec![ProcessId::new(5), ProcessId::new(6)];
    let nodes: Vec<Either<Node, SilentActor>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| {
            if byzantine.contains(&p) {
                Either::Right(SilentActor)
            } else {
                Either::Left(DagRiderNode::new(committee, p, k, config.clone()))
            }
        })
        .collect();
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 8), 5);
    for b in &byzantine {
        sim.mark_byzantine(*b);
    }
    sim.run();

    let observer = sim.actor(ProcessId::new(0)).as_left().unwrap();
    let log = observer.ordered();
    assert!(!log.is_empty());
    // Count ordered vertices per source.
    let mut counts = vec![0usize; committee.n()];
    for o in log {
        counts[o.vertex.source.as_usize()] += 1;
    }
    for b in &byzantine {
        assert_eq!(counts[b.as_usize()], 0, "mute process contributed vertices?");
    }
    let correct_counts: Vec<usize> = counts[..5].to_vec();
    let max = *correct_counts.iter().max().unwrap();
    let min = *correct_counts.iter().min().unwrap();
    // One vertex per round per process: counts differ by at most a few
    // rounds' worth of tail effects.
    assert!(max - min <= 4, "per-source ordered counts unbalanced: {correct_counts:?}");
    // Chain quality (§3): any prefix of length (2f+1)·r contains at least
    // (f+1)·r vertices from correct processes. With mute Byzantine
    // processes every vertex is from a correct process, so check the
    // stronger statement directly.
    let f = committee.f();
    for r in 1..=(log.len() / (2 * f + 1)) {
        let prefix = &log[..(2 * f + 1) * r];
        let correct = prefix.iter().filter(|o| !byzantine.contains(&o.vertex.source)).count();
        assert!(correct >= (f + 1) * r, "prefix {r}: {correct} correct vertices");
    }
}

/// Liveness with exactly `f` crash faults from the very start: rounds
/// advance on `2f+1` vertices, waves commit.
#[test]
fn liveness_with_f_initial_crashes() {
    let committee = Committee::new(7).unwrap();
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(21));
    let config = NodeConfig::default().with_max_round(16);
    let nodes: Vec<Node> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 8), 21);
    sim.initialize();
    sim.crash(ProcessId::new(0), true);
    sim.crash(ProcessId::new(1), true);
    sim.run();
    for p in committee.members().filter(|p| p.index() >= 2) {
        let node = sim.actor(p);
        assert!(node.decided_wave().number() >= 1, "{p} failed to commit any wave under f crashes");
    }
}
