//! Integration + property tests for the BAB **total order** property
//! (Definition 3.1): logs of correct processes are always prefix-related,
//! under arbitrary schedules, all broadcast instantiations, and crashes.

use dag_rider::core::NodeConfig;
use dag_rider::crypto::deal_coin_keys;
use dag_rider::rbc::{AvidRbc, BrachaRbc, ProbabilisticRbc, ReliableBroadcast};
use dag_rider::simactor::DagRiderNode;
use dag_rider::simnet::{Simulation, UniformScheduler};
use dag_rider::types::{Committee, ProcessId, VertexRef};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run<B: ReliableBroadcast>(
    n: usize,
    seed: u64,
    max_round: u64,
    max_delay: u64,
    crash: Option<(ProcessId, u64)>,
) -> Vec<Vec<VertexRef>> {
    let committee = Committee::new(n).unwrap();
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(seed));
    let config = NodeConfig::default().with_max_round(max_round);
    let nodes: Vec<DagRiderNode<B>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, max_delay), seed);
    if let Some((victim, after_events)) = crash {
        sim.run_until(after_events, |_| false);
        sim.crash(victim, true);
    }
    sim.run();
    committee
        .members()
        .filter(|p| crash.is_none_or(|(v, _)| v != *p))
        .map(|p| sim.actor(p).ordered().iter().map(|o| o.vertex).collect())
        .collect()
}

fn assert_prefix_consistent(logs: &[Vec<VertexRef>]) {
    for (i, a) in logs.iter().enumerate() {
        for (j, b) in logs.iter().enumerate().skip(i + 1) {
            let common = a.len().min(b.len());
            assert_eq!(&a[..common], &b[..common], "logs {i} and {j} diverge");
        }
    }
}

fn assert_no_duplicates(logs: &[Vec<VertexRef>]) {
    for (i, log) in logs.iter().enumerate() {
        let mut seen = std::collections::BTreeSet::new();
        for v in log {
            assert!(seen.insert(*v), "log {i} delivered {v} twice");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Total order holds for every schedule seed over Bracha broadcast.
    #[test]
    fn total_order_bracha(seed in 0u64..10_000, max_delay in 2u64..30) {
        let logs = run::<BrachaRbc>(4, seed, 16, max_delay, None);
        assert_prefix_consistent(&logs);
        assert_no_duplicates(&logs);
    }

    /// Same over AVID broadcast.
    #[test]
    fn total_order_avid(seed in 0u64..10_000, max_delay in 2u64..30) {
        let logs = run::<AvidRbc>(4, seed, 16, max_delay, None);
        assert_prefix_consistent(&logs);
        assert_no_duplicates(&logs);
    }

    /// Same over probabilistic broadcast (whp guarantees; at n = 4 the
    /// samples cover the committee, so order is still certain).
    #[test]
    fn total_order_probabilistic(seed in 0u64..10_000, max_delay in 2u64..30) {
        let logs = run::<ProbabilisticRbc>(4, seed, 16, max_delay, None);
        assert_prefix_consistent(&logs);
        assert_no_duplicates(&logs);
    }

    /// A crash of one process mid-run never breaks the survivors' order.
    #[test]
    fn total_order_with_crash(
        seed in 0u64..10_000,
        victim in 0u32..4,
        after in 50u64..800,
    ) {
        let logs = run::<BrachaRbc>(4, seed, 20, 10, Some((ProcessId::new(victim), after)));
        assert_eq!(logs.len(), 3);
        assert_prefix_consistent(&logs);
        assert_no_duplicates(&logs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Total order holds across the whole configuration matrix:
    /// garbage collection on/off × piggybacked coin on/off.
    #[test]
    fn total_order_config_matrix(
        seed in 0u64..10_000,
        gc in proptest::bool::ANY,
        piggyback in proptest::bool::ANY,
    ) {
        let committee = Committee::new(4).unwrap();
        let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(seed));
        let mut config = NodeConfig::default().with_max_round(20);
        if gc {
            config = config.with_gc_depth(6);
        }
        if piggyback {
            config = config.with_piggyback_coin();
        }
        let nodes: Vec<DagRiderNode<BrachaRbc>> = committee
            .members()
            .zip(keys)
            .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
            .collect();
        let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 12), seed);
        sim.run();
        let logs: Vec<Vec<VertexRef>> = committee
            .members()
            .map(|p| sim.actor(p).ordered().iter().map(|o| o.vertex).collect())
            .collect();
        assert_prefix_consistent(&logs);
        assert_no_duplicates(&logs);
        prop_assert!(logs.iter().all(|l| !l.is_empty()), "gc={gc} piggyback={piggyback}: no progress");
    }
}

#[test]
fn total_order_larger_committees() {
    for (n, seed) in [(7usize, 42u64), (10, 43), (13, 44)] {
        let logs = run::<BrachaRbc>(n, seed, 12, 10, None);
        assert_prefix_consistent(&logs);
        assert_no_duplicates(&logs);
        assert!(
            logs.iter().all(|l| !l.is_empty()),
            "n={n}: every process should deliver something"
        );
    }
}

#[test]
fn progress_every_correct_process_delivers() {
    let logs = run::<BrachaRbc>(4, 7, 24, 10, None);
    for (i, log) in logs.iter().enumerate() {
        assert!(log.len() >= 8, "process {i} only delivered {}", log.len());
    }
}
