//! Adversarial end-to-end scenarios: network partitions (long finite
//! delays — the async model's version of a partition) and a DAG-level
//! equivocator attacking through the broadcast layer.

use bytes::Bytes;
use dag_rider::core::{NodeConfig, VertexPayload};
use dag_rider::crypto::deal_coin_keys;
use dag_rider::rbc::{BrachaKind, BrachaMessage, BrachaRbc, RbcAction, ReliableBroadcast};
use dag_rider::simactor::DagRiderNode;
use dag_rider::simnet::{
    Actor, Context, Either, PartitionScheduler, Simulation, Time, UniformScheduler,
};
use dag_rider::types::{
    Block, Committee, Decode, Encode, ProcessId, Round, SeqNum, Transaction, VertexBuilder,
    VertexRef, Wave,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

type Node = DagRiderNode<BrachaRbc>;

/// During a partition no wave can commit (neither side has 2f+1); after
/// healing, progress resumes and total order holds.
#[test]
fn partition_stalls_then_heals() {
    let committee = Committee::new(4).unwrap();
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(61));
    let config = NodeConfig::default().with_max_round(24);
    let nodes: Vec<Node> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    // 2-2 split: neither side holds a 2f+1 = 3 quorum.
    let scheduler = PartitionScheduler::new(
        UniformScheduler::new(1, 6),
        [ProcessId::new(0), ProcessId::new(1)],
        3,
        Time::new(500),
    );
    let mut sim = Simulation::new(committee, nodes, scheduler, 61);

    // Run well into the partition: no process can pass round 1, because
    // completing it takes vertices from across the split.
    sim.run_until(100_000, |s| s.now() >= Time::new(400));
    for p in committee.members() {
        assert!(sim.actor(p).current_round() <= Round::new(1), "{p} advanced during the partition");
        assert_eq!(sim.actor(p).decided_wave(), Wave::new(0));
    }

    // Heal and drain: full progress, identical order.
    sim.run();
    let reference: Vec<VertexRef> =
        sim.actor(ProcessId::new(0)).ordered().iter().map(|o| o.vertex).collect();
    assert!(!reference.is_empty(), "no progress after healing");
    for p in committee.members() {
        let log: Vec<VertexRef> = sim.actor(p).ordered().iter().map(|o| o.vertex).collect();
        let common = log.len().min(reference.len());
        assert_eq!(&log[..common], &reference[..common], "{p} diverged");
        assert!(sim.actor(p).decided_wave() >= Wave::new(2), "{p} stalled after heal");
    }
}

/// A Byzantine process that builds **two different round-1 vertices** and
/// Bracha-INITs one to each half of the committee. Reliable broadcast must
/// neutralize the equivocation: correct processes agree on (at most) one.
struct DagEquivocator {
    committee: Committee,
    round: Round,
    payload_a: Vec<u8>,
    payload_b: Vec<u8>,
    inner: BrachaRbc,
}

impl DagEquivocator {
    fn new(committee: Committee, me: ProcessId) -> Self {
        let make = |tag: u64| {
            let block = Block::new(me, SeqNum::new(1), vec![Transaction::synthetic(tag, 16)]);
            let vertex = VertexBuilder::new(me, Round::new(1), block)
                .strong_edges(committee.members().map(|p| VertexRef::new(Round::GENESIS, p)))
                .build(&committee)
                .expect("structurally valid equivocating vertex");
            VertexPayload { vertex, coin_shares: Vec::new() }.to_bytes()
        };
        Self {
            committee,
            round: Round::new(1),
            payload_a: make(0xA),
            payload_b: make(0xB),
            inner: BrachaRbc::new(committee, me, 0),
        }
    }
}

impl Actor for DagEquivocator {
    fn init(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.me();
        for (i, to) in self.committee.others(me).enumerate() {
            let payload = if i % 2 == 0 { self.payload_a.clone() } else { self.payload_b.clone() };
            let init =
                BrachaMessage { source: me, round: self.round, kind: BrachaKind::Init(payload) };
            // Wrap as the node envelope (tag 0 = Rbc).
            let mut bytes = vec![0u8];
            init.encode(&mut bytes);
            ctx.send(to, Bytes::from(bytes));
        }
    }

    fn on_message(&mut self, from: ProcessId, payload: &[u8], ctx: &mut Context<'_>) {
        // Unwrap the node envelope, run an honest Bracha participant for
        // everyone's instances (so the run progresses), re-wrap outgoing.
        let Some((&tag, rest)) = payload.split_first() else { return };
        if tag != 0 {
            return;
        }
        let Ok(message) = BrachaMessage::from_bytes(rest) else { return };
        for action in self.inner.on_message(from, message, ctx.rng()) {
            if let RbcAction::Send(to, m) = action {
                let mut bytes = vec![0u8];
                m.encode(&mut bytes);
                ctx.send(to, Bytes::from(bytes));
            }
        }
    }
}

#[test]
fn dag_level_equivocation_is_neutralized() {
    for seed in [1u64, 5, 9, 14] {
        let committee = Committee::new(4).unwrap();
        let byz = ProcessId::new(3);
        let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(seed));
        let config = NodeConfig::default().with_max_round(16);
        let nodes: Vec<Either<Node, DagEquivocator>> = committee
            .members()
            .zip(keys)
            .map(|(p, k)| {
                if p == byz {
                    Either::Right(DagEquivocator::new(committee, p))
                } else {
                    Either::Left(DagRiderNode::new(committee, p, k, config.clone()))
                }
            })
            .collect();
        let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 10), seed);
        sim.mark_byzantine(byz);
        sim.run();

        // At most one equivocated vertex survives, and it's the same one
        // in every correct DAG (if present at all).
        let byz_ref = VertexRef::new(Round::new(1), byz);
        let survivors: Vec<Option<Block>> = committee
            .members()
            .filter(|&p| p != byz)
            .map(|p| {
                sim.actor(p).as_left().unwrap().dag().get(byz_ref).and_then(|v| v.block().cloned())
            })
            .collect();
        let present: Vec<&Block> = survivors.iter().flatten().collect();
        if let Some(first) = present.first() {
            assert!(
                present.iter().all(|b| b == first),
                "seed {seed}: correct processes hold different vertices for {byz_ref}"
            );
        }
        // And total order held throughout.
        let reference: Vec<VertexRef> = sim
            .actor(ProcessId::new(0))
            .as_left()
            .unwrap()
            .ordered()
            .iter()
            .map(|o| o.vertex)
            .collect();
        for p in [1u32, 2].map(ProcessId::new) {
            let log: Vec<VertexRef> =
                sim.actor(p).as_left().unwrap().ordered().iter().map(|o| o.vertex).collect();
            let common = log.len().min(reference.len());
            assert_eq!(&log[..common], &reference[..common], "seed {seed}: {p} diverged");
        }
    }
}

/// Progress and order survive a mid-run crash *plus* a partition that
/// isolates one of the survivors for a while.
#[test]
fn crash_plus_partition_combined() {
    let committee = Committee::new(7).unwrap();
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(67));
    let config = NodeConfig::default().with_max_round(20);
    let nodes: Vec<Node> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    // p6 isolated until t=300 (others: 6 ≥ 2f+1 = 5, so progress continues).
    let scheduler = PartitionScheduler::new(
        UniformScheduler::new(1, 6),
        [ProcessId::new(6)],
        3,
        Time::new(300),
    );
    let mut sim = Simulation::new(committee, nodes, scheduler, 67);
    sim.run_until(5_000, |_| false);
    sim.crash(ProcessId::new(0), true);
    sim.run();

    let survivors: Vec<ProcessId> = committee.members().filter(|p| p.index() != 0).collect();
    let reference: Vec<VertexRef> =
        sim.actor(survivors[0]).ordered().iter().map(|o| o.vertex).collect();
    assert!(!reference.is_empty());
    for &p in &survivors {
        let log: Vec<VertexRef> = sim.actor(p).ordered().iter().map(|o| o.vertex).collect();
        let common = log.len().min(reference.len());
        assert_eq!(&log[..common], &reference[..common], "{p} diverged");
        assert!(sim.actor(p).decided_wave() >= Wave::new(1), "{p} made no progress");
    }
}
