//! A conformance suite run against **all three** reliable-broadcast
//! instantiations: the §2 properties (Agreement, Integrity, Validity)
//! under random schedules, targeted adversarial delays, and crash faults.

use std::collections::{BTreeSet, VecDeque};

use dag_rider::rbc::{
    AvidRbc, BrachaRbc, ProbabilisticRbc, RbcAction, RbcProcess, ReliableBroadcast,
};
use dag_rider::simnet::{
    BandwidthScheduler, Scheduler, Simulation, TargetedScheduler, Time, UniformScheduler,
};
use dag_rider::trace::{RbcPhase, SharedTracer, TraceEvent};
use dag_rider::types::{Committee, ProcessId, Round, VertexRef};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build<B: ReliableBroadcast, S: Scheduler>(
    n: usize,
    seed: u64,
    scheduler: S,
) -> Simulation<RbcProcess<B>, S> {
    let committee = Committee::new(n).unwrap();
    let actors: Vec<RbcProcess<B>> = committee
        .members()
        .map(|p| {
            RbcProcess::new(
                B::new(committee, p, seed),
                vec![(Round::new(1), format!("payload-{p}").into_bytes())],
            )
        })
        .collect();
    Simulation::new(committee, actors, scheduler, seed)
}

/// Agreement + Integrity: all correct processes deliver the same set, at
/// most once per (source, round).
fn assert_conformance<B: ReliableBroadcast, S: Scheduler>(
    sim: &Simulation<RbcProcess<B>, S>,
    correct: &[ProcessId],
    min_deliveries: usize,
) {
    let canonical: Vec<_> = {
        let mut d = sim.actor(correct[0]).delivered().to_vec();
        d.sort_by_key(|x| (x.source, x.round));
        d
    };
    assert!(
        canonical.len() >= min_deliveries,
        "{}: only {} deliveries",
        B::name(),
        canonical.len()
    );
    for &p in correct {
        let mut d = sim.actor(p).delivered().to_vec();
        // Integrity: no duplicate (source, round).
        let mut keys: Vec<_> = d.iter().map(|x| (x.source, x.round)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), d.len(), "{}: duplicate delivery at {p}", B::name());
        // Agreement (at quiescence): same delivered set.
        d.sort_by_key(|x| (x.source, x.round));
        assert_eq!(d, canonical, "{}: {p} disagrees", B::name());
    }
}

fn random_schedule_case<B: ReliableBroadcast>(n: usize, seed: u64, max_delay: u64) {
    let mut sim = build::<B, _>(n, seed, UniformScheduler::new(1, max_delay));
    sim.run();
    let correct: Vec<ProcessId> = sim.committee().members().collect();
    // Validity: every correct sender's broadcast delivers.
    assert_conformance(&sim, &correct, n);
}

fn crash_case<B: ReliableBroadcast>(n: usize, seed: u64, victim: u32, after: u64) {
    let mut sim = build::<B, _>(n, seed, UniformScheduler::new(1, 10));
    sim.run_until(after, |_| false);
    sim.crash(ProcessId::new(victim), true);
    sim.run();
    let correct: Vec<ProcessId> =
        sim.committee().members().filter(|p| p.index() != victim).collect();
    // The crashed sender's broadcast may or may not deliver (all-or-none);
    // the other n-1 must.
    assert_conformance(&sim, &correct, n - 1);
}

fn targeted_delay_case<B: ReliableBroadcast>(n: usize, seed: u64, victim: u32) {
    let scheduler =
        TargetedScheduler::new(UniformScheduler::new(1, 6), [ProcessId::new(victim)], 300)
            .with_window(Time::ZERO, Time::new(300));
    let mut sim = build::<B, _>(n, seed, scheduler);
    sim.run();
    let correct: Vec<ProcessId> = sim.committee().members().collect();
    assert_conformance(&sim, &correct, n);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn bracha_random_schedules(seed in 0u64..10_000, max_delay in 2u64..40) {
        random_schedule_case::<BrachaRbc>(4, seed, max_delay);
    }

    #[test]
    fn avid_random_schedules(seed in 0u64..10_000, max_delay in 2u64..40) {
        random_schedule_case::<AvidRbc>(4, seed, max_delay);
    }

    #[test]
    fn probabilistic_random_schedules(seed in 0u64..10_000, max_delay in 2u64..40) {
        random_schedule_case::<ProbabilisticRbc>(4, seed, max_delay);
    }

    #[test]
    fn bracha_crash(seed in 0u64..10_000, victim in 0u32..4, after in 10u64..200) {
        crash_case::<BrachaRbc>(4, seed, victim, after);
    }

    #[test]
    fn avid_crash(seed in 0u64..10_000, victim in 0u32..4, after in 10u64..200) {
        crash_case::<AvidRbc>(4, seed, victim, after);
    }

    #[test]
    fn probabilistic_crash(seed in 0u64..10_000, victim in 0u32..4, after in 10u64..200) {
        crash_case::<ProbabilisticRbc>(4, seed, victim, after);
    }

    #[test]
    fn bracha_targeted_delay(seed in 0u64..10_000, victim in 0u32..4) {
        targeted_delay_case::<BrachaRbc>(4, seed, victim);
    }

    #[test]
    fn avid_targeted_delay(seed in 0u64..10_000, victim in 0u32..4) {
        targeted_delay_case::<AvidRbc>(4, seed, victim);
    }

    #[test]
    fn probabilistic_targeted_delay(seed in 0u64..10_000, victim in 0u32..4) {
        targeted_delay_case::<ProbabilisticRbc>(4, seed, victim);
    }
}

// --- direct state-machine drives: crash-stop mid-broadcast, replays -------

/// A minimal sans-io network over bare RBC state machines: FIFO queue,
/// optional per-message duplication (replayed fragments), and crash-stop
/// processes whose messages vanish.
struct DirectNet<B: ReliableBroadcast> {
    procs: Vec<B>,
    queue: VecDeque<(ProcessId, ProcessId, B::Message)>,
    log: Vec<(ProcessId, ProcessId, B::Message)>,
    delivered: Vec<Vec<dag_rider::rbc::RbcDelivery>>,
    crashed: BTreeSet<ProcessId>,
    duplicate: bool,
    rng: StdRng,
}

impl<B: ReliableBroadcast> DirectNet<B> {
    fn new(n: usize, seed: u64, duplicate: bool) -> Self {
        let committee = Committee::new(n).unwrap();
        let procs: Vec<B> = committee.members().map(|p| B::new(committee, p, seed)).collect();
        Self {
            procs,
            queue: VecDeque::new(),
            log: Vec::new(),
            delivered: vec![Vec::new(); n],
            crashed: BTreeSet::new(),
            duplicate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn apply(&mut self, at: ProcessId, actions: Vec<RbcAction<B::Message>>) {
        for action in actions {
            match action {
                RbcAction::Send(to, message) => {
                    self.queue.push_back((at, to, message.clone()));
                    if self.duplicate {
                        self.queue.push_back((at, to, message));
                    }
                }
                RbcAction::Deliver(delivery) => self.delivered[at.as_usize()].push(delivery),
            }
        }
    }

    fn rbcast(&mut self, sender: ProcessId, payload: Vec<u8>, round: Round) {
        let actions = self.procs[sender.as_usize()].rbcast(payload, round, &mut self.rng);
        self.apply(sender, actions);
    }

    /// Drains the queue to quiescence; messages from or to crashed
    /// processes are dropped on the floor.
    fn run(&mut self) {
        while let Some((from, to, message)) = self.queue.pop_front() {
            if self.crashed.contains(&from) || self.crashed.contains(&to) {
                continue;
            }
            self.log.push((from, to, message.clone()));
            let actions = self.procs[to.as_usize()].on_message(from, message, &mut self.rng);
            self.apply(to, actions);
        }
    }

    /// Replays every message processed so far, in order, then drains any
    /// fallout — a full-trace replay attack.
    fn replay_everything(&mut self) {
        let log = std::mem::take(&mut self.log);
        for (from, to, message) in log {
            self.queue.push_back((from, to, message));
        }
        self.run();
    }

    fn deliveries_of(&self, p: ProcessId, source: ProcessId, round: Round) -> usize {
        self.delivered[p.as_usize()]
            .iter()
            .filter(|d| d.source == source && d.round == round)
            .count()
    }
}

/// The sender crash-stops mid-broadcast: only `reached` peers ever see its
/// opening messages, everything else from it vanishes. The surviving
/// correct processes must resolve all-or-none (Agreement/totality), never
/// a split where some deliver and some hang forever.
fn crash_stop_mid_broadcast_case<B: ReliableBroadcast>(seed: u64, reached: usize) {
    let n = 4;
    let sender = ProcessId::new(0);
    let round = Round::new(1);
    let mut net = DirectNet::<B>::new(n, seed, false);
    let actions = net.procs[0].rbcast(b"mid-broadcast".to_vec(), round, &mut net.rng);
    // Partition the opening volley: peers with index <= `reached` get their
    // messages, the rest were still in the sender's socket buffers.
    for action in actions {
        match action {
            RbcAction::Send(to, message) if to.as_usize() <= reached => {
                net.queue.push_back((sender, to, message));
            }
            RbcAction::Send(..) => {}
            RbcAction::Deliver(delivery) => net.delivered[0].push(delivery),
        }
    }
    net.crashed.insert(sender);
    net.run();
    let counts: Vec<usize> =
        (1..n).map(|i| net.deliveries_of(ProcessId::new(i as u32), sender, round)).collect();
    assert!(counts.iter().all(|&c| c <= 1), "{}: duplicate delivery {counts:?}", B::name());
    assert!(
        counts.iter().all(|&c| c == counts[0]),
        "{}: crash mid-broadcast split the correct processes: {counts:?}",
        B::name()
    );
}

#[test]
fn crash_stop_mid_broadcast_all_or_none() {
    for reached in 0..4 {
        for seed in [1u64, 7, 23] {
            crash_stop_mid_broadcast_case::<BrachaRbc>(seed, reached);
            crash_stop_mid_broadcast_case::<AvidRbc>(seed, reached);
            crash_stop_mid_broadcast_case::<ProbabilisticRbc>(seed, reached);
        }
    }
}

/// Integrity under duplication and wholesale replay: every wire message is
/// delivered twice, then the entire message trace is replayed from the
/// start. Each process must still deliver each broadcast exactly once.
fn duplicate_and_replay_case<B: ReliableBroadcast>(seed: u64) {
    let n = 4;
    let round = Round::new(1);
    let mut net = DirectNet::<B>::new(n, seed, true);
    for i in 0..n {
        net.rbcast(ProcessId::new(i as u32), format!("payload-{i}").into_bytes(), round);
    }
    net.run();
    for p in 0..n {
        for source in 0..n {
            assert_eq!(
                net.deliveries_of(ProcessId::new(p as u32), ProcessId::new(source as u32), round),
                1,
                "{}: process {p} did not deliver source {source} exactly once \
                 under duplication",
                B::name()
            );
        }
    }
    net.replay_everything();
    for p in 0..n {
        for source in 0..n {
            assert_eq!(
                net.deliveries_of(ProcessId::new(p as u32), ProcessId::new(source as u32), round),
                1,
                "{}: replaying the full trace re-delivered source {source} at {p}",
                B::name()
            );
        }
    }
}

#[test]
fn duplicated_and_replayed_messages_deliver_once() {
    for seed in [2u64, 11, 31] {
        duplicate_and_replay_case::<BrachaRbc>(seed);
        duplicate_and_replay_case::<AvidRbc>(seed);
        duplicate_and_replay_case::<ProbabilisticRbc>(seed);
    }
}

// --- trace phase ordering --------------------------------------------------

/// Runs a traced simulation and returns, per (process, instance), the
/// sequence of [`RbcPhase`] events in recording order.
fn traced_phases<B: ReliableBroadcast>(
    n: usize,
    seed: u64,
) -> Vec<(ProcessId, Vec<(VertexRef, RbcPhase)>)> {
    let committee = Committee::new(n).unwrap();
    let tracers: Vec<SharedTracer> =
        committee.members().map(|p| SharedTracer::new(p, 4096)).collect();
    let actors: Vec<RbcProcess<B>> = committee
        .members()
        .zip(tracers.iter())
        .map(|(p, tracer)| {
            RbcProcess::new(
                B::new(committee, p, seed),
                vec![(Round::new(1), format!("payload-{p}").into_bytes())],
            )
            .with_tracer(tracer.clone())
        })
        .collect();
    let mut sim = Simulation::new(committee, actors, UniformScheduler::new(1, 8), seed);
    sim.run();
    let correct: Vec<ProcessId> = sim.committee().members().collect();
    assert_conformance(&sim, &correct, n);
    tracers
        .iter()
        .zip(committee.members())
        .map(|(tracer, p)| {
            assert_eq!(tracer.dropped(), 0, "phase ring overflowed at {p}");
            let phases = tracer
                .records()
                .into_iter()
                .filter_map(|r| match r.event {
                    TraceEvent::RbcPhase { instance, phase, .. } => Some((instance, phase)),
                    _ => None,
                })
                .collect();
            (p, phases)
        })
        .collect()
}

/// Shared assertions, per (process, instance): each phase fires at most
/// once; `Init` comes first and only ever at the instance's own source;
/// `Deliver`, when present, is the final phase (and, where the primitive
/// guarantees it, preceded by `Commit`). Note Witness-before-Commit is
/// deliberately *not* asserted: Bracha/AVID ready amplification (READY on
/// `f + 1` READYs) legally commits without this process ever echoing.
fn assert_phase_order(
    per_process: &[(ProcessId, Vec<(VertexRef, RbcPhase)>)],
    commit_before_deliver: bool,
    name: &str,
) {
    for (p, phases) in per_process {
        assert!(!phases.is_empty(), "{name}: {p} recorded no phase events");
        let mut instances: BTreeSet<VertexRef> = BTreeSet::new();
        for (instance, _) in phases {
            instances.insert(*instance);
        }
        for instance in instances {
            let seq: Vec<RbcPhase> =
                phases.iter().filter(|(i, _)| *i == instance).map(|(_, ph)| *ph).collect();
            let mut unique: Vec<RbcPhase> = seq.clone();
            unique.sort();
            unique.dedup();
            assert_eq!(
                unique.len(),
                seq.len(),
                "{name}: {p} repeated a phase for {instance}: {seq:?}"
            );
            if seq.contains(&RbcPhase::Init) {
                assert_eq!(
                    instance.source, *p,
                    "{name}: {p} recorded Init for another process's instance"
                );
                assert_eq!(seq[0], RbcPhase::Init, "{name}: Init must come first");
            }
            if let Some(at) = seq.iter().position(|ph| *ph == RbcPhase::Deliver) {
                assert_eq!(
                    at,
                    seq.len() - 1,
                    "{name}: {p} kept changing phase after delivering {instance}: {seq:?}"
                );
                if commit_before_deliver {
                    assert!(
                        seq[..at].contains(&RbcPhase::Commit),
                        "{name}: {p} delivered {instance} without committing first: {seq:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn bracha_trace_phases_fire_in_protocol_order() {
    for seed in [3u64, 17] {
        let phases = traced_phases::<BrachaRbc>(4, seed);
        // Bracha only delivers after sending its own READY: Commit always
        // precedes Deliver.
        assert_phase_order(&phases, true, "bracha");
    }
}

#[test]
fn avid_trace_phases_fire_in_protocol_order() {
    for seed in [3u64, 17] {
        let phases = traced_phases::<AvidRbc>(4, seed);
        assert_phase_order(&phases, true, "avid");
    }
}

#[test]
fn probabilistic_trace_phases_fire_in_protocol_order() {
    for seed in [3u64, 17] {
        let phases = traced_phases::<ProbabilisticRbc>(4, seed);
        // Contagion may deliver off sampled readies without ever turning
        // ready itself, so Commit-before-Deliver is not guaranteed — but
        // phase order and Init locality still are.
        assert_phase_order(&phases, false, "probabilistic");
    }
}

#[test]
fn larger_committees_all_protocols() {
    random_schedule_case::<BrachaRbc>(10, 1, 12);
    random_schedule_case::<AvidRbc>(10, 2, 12);
    random_schedule_case::<ProbabilisticRbc>(10, 3, 12);
}

/// On a bandwidth-limited network, AVID's small fragments beat Bracha's
/// full-payload echoes in completion *time* as well as bytes — the
/// practical reason dispersal wins for payload-heavy workloads.
#[test]
fn avid_beats_bracha_on_bandwidth_limited_links() {
    let n = 7;
    let payload = vec![0x5au8; 20_000];
    let run = |avid: bool| -> u64 {
        let committee = Committee::new(n).unwrap();
        let scheduler = BandwidthScheduler::new(UniformScheduler::new(1, 3), 500);
        if avid {
            let actors: Vec<RbcProcess<AvidRbc>> = committee
                .members()
                .map(|p| {
                    let queue = if p.index() == 0 {
                        vec![(Round::new(1), payload.clone())]
                    } else {
                        Vec::new()
                    };
                    RbcProcess::new(AvidRbc::new(committee, p, 0), queue)
                })
                .collect();
            let mut sim = Simulation::new(committee, actors, scheduler, 5);
            let done = sim.run_until(1_000_000, |s| {
                s.committee().members().all(|p| !s.actor(p).delivered().is_empty())
            });
            assert!(done, "avid failed to deliver");
            sim.now().ticks()
        } else {
            let actors: Vec<RbcProcess<BrachaRbc>> = committee
                .members()
                .map(|p| {
                    let queue = if p.index() == 0 {
                        vec![(Round::new(1), payload.clone())]
                    } else {
                        Vec::new()
                    };
                    RbcProcess::new(BrachaRbc::new(committee, p, 0), queue)
                })
                .collect();
            let mut sim = Simulation::new(committee, actors, scheduler, 5);
            let done = sim.run_until(1_000_000, |s| {
                s.committee().members().all(|p| !s.actor(p).delivered().is_empty())
            });
            assert!(done, "bracha failed to deliver");
            sim.now().ticks()
        }
    };
    let avid_time = run(true);
    let bracha_time = run(false);
    assert!(
        avid_time < bracha_time,
        "avid {avid_time} ticks should beat bracha {bracha_time} ticks on slow links"
    );
}
