//! A conformance suite run against **all three** reliable-broadcast
//! instantiations: the §2 properties (Agreement, Integrity, Validity)
//! under random schedules, targeted adversarial delays, and crash faults.

use dag_rider::rbc::{AvidRbc, BrachaRbc, ProbabilisticRbc, RbcProcess, ReliableBroadcast};
use dag_rider::simnet::{
    BandwidthScheduler, Scheduler, Simulation, TargetedScheduler, Time, UniformScheduler,
};
use dag_rider::types::{Committee, ProcessId, Round};
use proptest::prelude::*;

fn build<B: ReliableBroadcast, S: Scheduler>(
    n: usize,
    seed: u64,
    scheduler: S,
) -> Simulation<RbcProcess<B>, S> {
    let committee = Committee::new(n).unwrap();
    let actors: Vec<RbcProcess<B>> = committee
        .members()
        .map(|p| {
            RbcProcess::new(
                B::new(committee, p, seed),
                vec![(Round::new(1), format!("payload-{p}").into_bytes())],
            )
        })
        .collect();
    Simulation::new(committee, actors, scheduler, seed)
}

/// Agreement + Integrity: all correct processes deliver the same set, at
/// most once per (source, round).
fn assert_conformance<B: ReliableBroadcast, S: Scheduler>(
    sim: &Simulation<RbcProcess<B>, S>,
    correct: &[ProcessId],
    min_deliveries: usize,
) {
    let canonical: Vec<_> = {
        let mut d = sim.actor(correct[0]).delivered().to_vec();
        d.sort_by_key(|x| (x.source, x.round));
        d
    };
    assert!(
        canonical.len() >= min_deliveries,
        "{}: only {} deliveries",
        B::name(),
        canonical.len()
    );
    for &p in correct {
        let mut d = sim.actor(p).delivered().to_vec();
        // Integrity: no duplicate (source, round).
        let mut keys: Vec<_> = d.iter().map(|x| (x.source, x.round)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), d.len(), "{}: duplicate delivery at {p}", B::name());
        // Agreement (at quiescence): same delivered set.
        d.sort_by_key(|x| (x.source, x.round));
        assert_eq!(d, canonical, "{}: {p} disagrees", B::name());
    }
}

fn random_schedule_case<B: ReliableBroadcast>(n: usize, seed: u64, max_delay: u64) {
    let mut sim = build::<B, _>(n, seed, UniformScheduler::new(1, max_delay));
    sim.run();
    let correct: Vec<ProcessId> = sim.committee().members().collect();
    // Validity: every correct sender's broadcast delivers.
    assert_conformance(&sim, &correct, n);
}

fn crash_case<B: ReliableBroadcast>(n: usize, seed: u64, victim: u32, after: u64) {
    let mut sim = build::<B, _>(n, seed, UniformScheduler::new(1, 10));
    sim.run_until(after, |_| false);
    sim.crash(ProcessId::new(victim), true);
    sim.run();
    let correct: Vec<ProcessId> =
        sim.committee().members().filter(|p| p.index() != victim).collect();
    // The crashed sender's broadcast may or may not deliver (all-or-none);
    // the other n-1 must.
    assert_conformance(&sim, &correct, n - 1);
}

fn targeted_delay_case<B: ReliableBroadcast>(n: usize, seed: u64, victim: u32) {
    let scheduler =
        TargetedScheduler::new(UniformScheduler::new(1, 6), [ProcessId::new(victim)], 300)
            .with_window(Time::ZERO, Time::new(300));
    let mut sim = build::<B, _>(n, seed, scheduler);
    sim.run();
    let correct: Vec<ProcessId> = sim.committee().members().collect();
    assert_conformance(&sim, &correct, n);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn bracha_random_schedules(seed in 0u64..10_000, max_delay in 2u64..40) {
        random_schedule_case::<BrachaRbc>(4, seed, max_delay);
    }

    #[test]
    fn avid_random_schedules(seed in 0u64..10_000, max_delay in 2u64..40) {
        random_schedule_case::<AvidRbc>(4, seed, max_delay);
    }

    #[test]
    fn probabilistic_random_schedules(seed in 0u64..10_000, max_delay in 2u64..40) {
        random_schedule_case::<ProbabilisticRbc>(4, seed, max_delay);
    }

    #[test]
    fn bracha_crash(seed in 0u64..10_000, victim in 0u32..4, after in 10u64..200) {
        crash_case::<BrachaRbc>(4, seed, victim, after);
    }

    #[test]
    fn avid_crash(seed in 0u64..10_000, victim in 0u32..4, after in 10u64..200) {
        crash_case::<AvidRbc>(4, seed, victim, after);
    }

    #[test]
    fn bracha_targeted_delay(seed in 0u64..10_000, victim in 0u32..4) {
        targeted_delay_case::<BrachaRbc>(4, seed, victim);
    }

    #[test]
    fn avid_targeted_delay(seed in 0u64..10_000, victim in 0u32..4) {
        targeted_delay_case::<AvidRbc>(4, seed, victim);
    }
}

#[test]
fn larger_committees_all_protocols() {
    random_schedule_case::<BrachaRbc>(10, 1, 12);
    random_schedule_case::<AvidRbc>(10, 2, 12);
    random_schedule_case::<ProbabilisticRbc>(10, 3, 12);
}

/// On a bandwidth-limited network, AVID's small fragments beat Bracha's
/// full-payload echoes in completion *time* as well as bytes — the
/// practical reason dispersal wins for payload-heavy workloads.
#[test]
fn avid_beats_bracha_on_bandwidth_limited_links() {
    let n = 7;
    let payload = vec![0x5au8; 20_000];
    let run = |avid: bool| -> u64 {
        let committee = Committee::new(n).unwrap();
        let scheduler = BandwidthScheduler::new(UniformScheduler::new(1, 3), 500);
        if avid {
            let actors: Vec<RbcProcess<AvidRbc>> = committee
                .members()
                .map(|p| {
                    let queue = if p.index() == 0 {
                        vec![(Round::new(1), payload.clone())]
                    } else {
                        Vec::new()
                    };
                    RbcProcess::new(AvidRbc::new(committee, p, 0), queue)
                })
                .collect();
            let mut sim = Simulation::new(committee, actors, scheduler, 5);
            let done = sim.run_until(1_000_000, |s| {
                s.committee().members().all(|p| !s.actor(p).delivered().is_empty())
            });
            assert!(done, "avid failed to deliver");
            sim.now().ticks()
        } else {
            let actors: Vec<RbcProcess<BrachaRbc>> = committee
                .members()
                .map(|p| {
                    let queue = if p.index() == 0 {
                        vec![(Round::new(1), payload.clone())]
                    } else {
                        Vec::new()
                    };
                    RbcProcess::new(BrachaRbc::new(committee, p, 0), queue)
                })
                .collect();
            let mut sim = Simulation::new(committee, actors, scheduler, 5);
            let done = sim.run_until(1_000_000, |s| {
                s.committee().members().all(|p| !s.actor(p).delivered().is_empty())
            });
            assert!(done, "bracha failed to deliver");
            sim.now().ticks()
        }
    };
    let avid_time = run(true);
    let bracha_time = run(false);
    assert!(
        avid_time < bracha_time,
        "avid {avid_time} ticks should beat bracha {bracha_time} ticks on slow links"
    );
}
