//! Property-based tests over the cryptographic substrate: the invariants
//! the protocol's proofs lean on must hold for *arbitrary* inputs.

use dag_rider::crypto::{
    deal_coin_keys, reconstruct_secret, sha256, share_secret, CoinAggregator, MerkleTree,
    ReedSolomon, Scalar, Sha256,
};
use dag_rider::types::{
    Block, Committee, Decode, Encode, ProcessId, Round, SeqNum, Transaction, Vertex, VertexBuilder,
    VertexRef,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reed–Solomon: decode ∘ encode = id for any payload and any
    /// k-subset of shards.
    #[test]
    fn rs_roundtrip_any_subset(
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        f in 1usize..5,
        pick_seed in any::<u64>(),
    ) {
        let n = 3 * f + 1;
        let k = f + 1;
        let rs = ReedSolomon::new(k, n).unwrap();
        let shards = rs.encode(&payload);
        // Pick a pseudo-random k-subset.
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = pick_seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let subset: Vec<_> = order[..k].iter().map(|&i| shards[i].clone()).collect();
        prop_assert_eq!(rs.decode(&subset).unwrap(), payload);
    }

    /// Shamir: any subset of `threshold` shares reconstructs; fewer gives
    /// a different value (whp over the polynomial's randomness).
    #[test]
    fn shamir_reconstructs_any_threshold_subset(
        secret in 0u64..,
        seed in any::<u64>(),
    ) {
        let secret = Scalar::new(secret);
        let mut rng = StdRng::seed_from_u64(seed);
        let shares = share_secret(secret, 7, 3, &mut rng).unwrap();
        for subset in [[0usize, 1, 2], [4, 5, 6], [0, 3, 6], [1, 4, 5]] {
            let picked: Vec<_> = subset.iter().map(|&i| shares[i]).collect();
            prop_assert_eq!(reconstruct_secret(&picked).unwrap(), secret);
        }
    }

    /// SHA-256: incremental hashing equals one-shot hashing at any split.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        split_frac in 0.0f64..=1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut hasher = Sha256::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), sha256(&data));
    }

    /// Merkle: every leaf of every tree proves against the root, and a
    /// proof never validates a different leaf.
    #[test]
    fn merkle_proofs_complete_and_sound(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..24),
    ) {
        let tree = MerkleTree::build(&leaves).unwrap();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(proof.verify(tree.root(), leaf));
            // Soundness against a sibling leaf (if distinct).
            let j = (i + 1) % leaves.len();
            if leaves[j] != *leaf {
                prop_assert!(!proof.verify(tree.root(), &leaves[j]));
            }
        }
    }

    /// The coin elects the same leader for every f+1-subset of shares —
    /// the Agreement property quantified over share subsets and instances.
    #[test]
    fn coin_agreement_over_subsets(instance in any::<u64>(), seed in any::<u64>()) {
        let committee = Committee::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = deal_coin_keys(&committee, &mut rng);
        let shares: Vec<_> = keys.iter().map(|k| k.share(instance, &mut rng)).collect();
        let mut leaders = Vec::new();
        for a in 0..4 {
            for b in (a + 1)..4 {
                let mut agg = CoinAggregator::new(instance, keys[0].public());
                agg.add_share(shares[a]).unwrap();
                let leader = agg.add_share(shares[b]).unwrap().unwrap();
                leaders.push(leader);
            }
        }
        prop_assert!(leaders.windows(2).all(|w| w[0] == w[1]));
    }

    /// Wire codec: vertices roundtrip for arbitrary block contents and
    /// edge sets, and `encoded_len` is always exact.
    #[test]
    fn vertex_codec_roundtrip(
        source in 0u32..16,
        round in 2u64..50,
        txs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..50), 0..6),
        strong in proptest::collection::btree_set(0u32..16, 1..8),
        weak in proptest::collection::btree_set((1u64..20, 0u32..16), 0..5),
    ) {
        let block = Block::new(
            ProcessId::new(source),
            SeqNum::new(round),
            txs.into_iter().map(Transaction::new).collect::<Vec<_>>(),
        );
        let vertex = VertexBuilder::new(ProcessId::new(source), Round::new(round), block)
            .strong_edges(strong.into_iter().map(|s| VertexRef::new(Round::new(round - 1), ProcessId::new(s))))
            .weak_edges(weak.into_iter().filter(|(r, _)| *r < round - 1).map(|(r, s)| VertexRef::new(Round::new(r), ProcessId::new(s))))
            .build_unchecked();
        let bytes = vertex.to_bytes();
        prop_assert_eq!(bytes.len(), vertex.encoded_len());
        prop_assert_eq!(Vertex::from_bytes(&bytes).unwrap(), vertex);
    }

    /// Decoding arbitrary bytes never panics — it returns Ok or Err.
    #[test]
    fn vertex_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Vertex::from_bytes(&bytes);
        let _ = Block::from_bytes(&bytes);
    }
}

/// Deterministic cross-check: the coin's fairness over many instances at
/// n = 7 (χ²-style bound, loose).
#[test]
fn coin_fairness_n7() {
    let committee = Committee::new(7).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let keys = deal_coin_keys(&committee, &mut rng);
    let trials = 1400u64;
    let mut counts = [0usize; 7];
    for instance in 0..trials {
        let mut agg = CoinAggregator::new(instance, keys[0].public());
        for k in keys.iter().take(2) {
            agg.add_share(k.share(instance, &mut rng)).unwrap();
        }
        let leader = agg.add_share(keys[2].share(instance, &mut rng)).unwrap().unwrap();
        counts[leader.as_usize()] += 1;
    }
    let expected = trials as f64 / 7.0;
    for (i, &c) in counts.iter().enumerate() {
        let dev = (c as f64 - expected).abs() / expected;
        assert!(dev < 0.3, "process {i}: {c} elections vs expected {expected}");
    }
}
