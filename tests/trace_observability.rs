//! Observability conformance: the structured event traces emitted by a
//! full DAG-Rider run are complete, causally consistent, and support the
//! §3 latency claims — checked deterministically across ≥ 32 seeds and
//! property-tested over random schedules and committee sizes.

use std::collections::{BTreeMap, BTreeSet};

use dag_rider::analysis::{DagAuditor, TraceReport};
use dag_rider::core::{NodeConfig, WaveOutcome};
use dag_rider::crypto::deal_coin_keys;
use dag_rider::rbc::BrachaRbc;
use dag_rider::simactor::DagRiderNode;
use dag_rider::simnet::{Simulation, UniformScheduler};
use dag_rider::trace::{TraceEvent, TraceRecord};
use dag_rider::types::{Committee, VertexRef, Wave};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MAX_ROUND: u64 = 16;

fn traced_run(
    n: usize,
    seed: u64,
    max_delay: u64,
) -> Simulation<DagRiderNode<BrachaRbc>, UniformScheduler> {
    let committee = Committee::new(n).unwrap();
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(seed));
    // Ample ring: never drop a record, so traces are complete and the
    // auditor's stream checks are sound.
    let capacity = (MAX_ROUND as usize + 1) * n * 64;
    let config = NodeConfig::default().with_max_round(MAX_ROUND).with_trace(capacity);
    let nodes: Vec<DagRiderNode<BrachaRbc>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, max_delay), seed);
    sim.run();
    sim
}

/// Every committed wave must carry **exactly one** `LeaderCommitted`
/// record per process, and every `LeaderCommitted` must correspond to a
/// committed wave in the node's commit log.
fn assert_one_commit_event_per_wave(records: &[TraceRecord], node: &DagRiderNode<BrachaRbc>) {
    let mut commit_events: BTreeMap<Wave, usize> = BTreeMap::new();
    for record in records {
        if let TraceEvent::LeaderCommitted { wave, .. } = record.event {
            *commit_events.entry(wave).or_insert(0) += 1;
        }
    }
    let committed_waves: BTreeSet<Wave> = node
        .commits()
        .iter()
        .filter(|c| matches!(c.outcome, WaveOutcome::Direct | WaveOutcome::Indirect))
        .map(|c| c.wave)
        .collect();
    for (wave, count) in &commit_events {
        assert_eq!(*count, 1, "wave {wave} has {count} LeaderCommitted events");
        assert!(
            committed_waves.contains(wave),
            "trace commits wave {wave} but the commit log does not"
        );
    }
    for wave in &committed_waves {
        assert!(
            commit_events.contains_key(wave),
            "commit log commits wave {wave} but the trace never did"
        );
    }
}

/// `VertexOrdered` events must respect causal history: positions are
/// contiguous from zero, match the node's `ordered()` log, and no vertex
/// precedes any vertex its edges point to.
fn assert_ordering_respects_causal_history(
    records: &[TraceRecord],
    node: &DagRiderNode<BrachaRbc>,
) {
    let mut positions: BTreeMap<VertexRef, u64> = BTreeMap::new();
    let mut in_order: Vec<VertexRef> = Vec::new();
    for record in records {
        if let TraceEvent::VertexOrdered { vertex, position, .. } = record.event {
            assert_eq!(
                position,
                in_order.len() as u64,
                "ordering positions must be contiguous from zero"
            );
            assert!(positions.insert(vertex, position).is_none(), "{vertex} ordered twice");
            in_order.push(vertex);
        }
    }
    let log: Vec<VertexRef> = node.ordered().iter().map(|o| o.vertex).collect();
    assert_eq!(in_order, log, "trace ordering diverges from the ordered() log");
    // Causal respect: every edge of an ordered vertex that is itself
    // ordered must have been ordered first (Algorithm 3 lines 51–57 order
    // a leader's causal history before the leader).
    for (vertex, position) in &positions {
        let Some(v) = node.dag().get(*vertex) else { continue };
        for edge in v.edges() {
            if let Some(edge_position) = positions.get(edge) {
                assert!(
                    edge_position < position,
                    "{vertex} at position {position} ordered before its dependency \
                     {edge} at {edge_position}"
                );
            }
        }
    }
}

/// Per-wave commit latency from the report must be finite, positive, and
/// bounded by the run's elapsed time (in ticks and in §3 time units).
fn assert_latency_finite_and_bounded(report: &TraceReport) {
    assert!(!report.waves.is_empty(), "run committed no wave at all");
    assert!(report.max_correct_delay > 0, "no delivered correct-to-correct message");
    assert!(report.total_time_units.is_finite() && report.total_time_units > 0.0);
    for wave in &report.waves {
        assert!(wave.commits > 0, "wave {} reported with zero commits", wave.wave);
        assert!(wave.min_ticks <= wave.max_ticks);
        assert!(
            wave.max_ticks <= report.elapsed.ticks(),
            "wave {} latency {} exceeds elapsed {}",
            wave.wave,
            wave.max_ticks,
            report.elapsed
        );
        assert!(wave.mean_ticks.is_finite() && wave.mean_ticks > 0.0);
        assert!(
            wave.mean_time_units.is_finite() && wave.mean_time_units > 0.0,
            "wave {} has non-finite time-unit latency",
            wave.wave
        );
        assert!(
            wave.mean_time_units <= report.total_time_units,
            "wave {} latency {} time units exceeds the whole run ({})",
            wave.wave,
            wave.mean_time_units,
            report.total_time_units
        );
        assert!(wave.mean_rounds.is_finite() && wave.mean_rounds >= 0.0);
    }
}

fn check_run(n: usize, seed: u64, max_delay: u64) {
    let sim = traced_run(n, seed, max_delay);
    let committee = sim.committee();
    let auditor = DagAuditor::new(committee);
    let mut merged: Vec<TraceRecord> = Vec::new();
    for p in committee.members() {
        let node = sim.actor(p);
        assert!(node.tracer().is_enabled());
        assert_eq!(node.tracer().dropped(), 0, "{p}: ring too small, trace incomplete");
        let records = node.trace_records();
        assert!(!records.is_empty(), "{p}: no trace records");
        let violations = auditor.audit_trace(&records);
        assert!(violations.is_empty(), "{p}: trace audit failed: {violations:?}");
        assert_one_commit_event_per_wave(&records, node);
        assert_ordering_respects_causal_history(&records, node);
        merged.extend(records);
    }
    let report = TraceReport::build(&merged, sim.metrics(), sim.now());
    assert_latency_finite_and_bounded(&report);
    assert_eq!(
        report.ordered_total,
        committee.members().map(|p| sim.actor(p).ordered().len() as u64).sum::<u64>(),
        "report ordered_total diverges from the nodes' logs"
    );
}

/// The headline acceptance check: 32 distinct seeds, all clean.
#[test]
fn thirty_two_seeds_trace_clean_n4() {
    for seed in 0..32u64 {
        check_run(4, seed, 8);
    }
}

#[test]
fn traces_clean_at_n7() {
    for seed in [0u64, 7, 19, 42] {
        check_run(7, seed, 10);
    }
}

/// An untraced node stays untraced: no ring, no records, zero accounting.
#[test]
fn tracing_is_off_by_default() {
    let committee = Committee::new(4).unwrap();
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(1));
    let config = NodeConfig::default().with_max_round(8);
    let nodes: Vec<DagRiderNode<BrachaRbc>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 6), 1);
    sim.run();
    for p in committee.members() {
        let node = sim.actor(p);
        assert!(!node.ordered().is_empty(), "{p} must still make progress");
        assert!(!node.tracer().is_enabled());
        assert!(node.trace_records().is_empty());
        assert_eq!(node.tracer().recorded(), 0);
    }
}

/// Batch-lifecycle observability: a digest-payload cluster — including a
/// straggler that must fetch a batch it never received — emits traces the
/// auditor accepts, and a trace whose resolution record is missing is
/// flagged as `UnresolvedOrderedDigest`.
#[test]
fn digest_lifecycle_traces_audit_clean_and_flag_missing_resolution() {
    use std::collections::VecDeque;

    use dag_rider::analysis::InvariantViolation;
    use dag_rider::core::{batch_digest, DagRiderEngine, EngineInput, EngineOutput};
    use dag_rider::types::{Batch, ProcessId, Round, Time, Transaction};

    let committee = Committee::new(4).unwrap();
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(414));
    let config = NodeConfig::default().with_max_round(MAX_ROUND).with_trace(8192);
    let mut engines: Vec<DagRiderEngine<BrachaRbc>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderEngine::new(committee, p, k, config.clone()))
        .collect();
    let mut rngs: Vec<StdRng> = (0..4).map(|i| StdRng::seed_from_u64(600 + i)).collect();
    let batches: Vec<Batch> = committee
        .members()
        .map(|p| Batch::new(p, 0, vec![Transaction::synthetic(90 + p.as_usize() as u64, 32)]))
        .collect();
    // Process 3 never receives process 0's batch by dissemination: once
    // that digest reaches the front of its order it must go through the
    // missing-batch fetch path.
    let straggler = ProcessId::new(3);

    let mut wire: VecDeque<(ProcessId, ProcessId, Vec<u8>)> = VecDeque::new();
    let mut fetches: VecDeque<(ProcessId, Vec<dag_rider::types::BatchDigest>)> = VecDeque::new();
    let route =
        |from: ProcessId,
         outs: &[EngineOutput],
         wire: &mut VecDeque<(ProcessId, ProcessId, Vec<u8>)>,
         fetches: &mut VecDeque<(ProcessId, Vec<dag_rider::types::BatchDigest>)>| {
            for out in outs {
                match out {
                    EngineOutput::Send { to, payload } => {
                        wire.push_back((from, *to, payload.to_vec()));
                    }
                    EngineOutput::Broadcast { payload } => {
                        for to in committee.others(from) {
                            wire.push_back((from, to, payload.to_vec()));
                        }
                    }
                    EngineOutput::FetchBatches { digests, .. } => {
                        fetches.push_back((from, digests.clone()));
                    }
                    EngineOutput::SetTimer { .. } | EngineOutput::Ordered(_) => {}
                }
            }
        };
    for p in committee.members() {
        let i = p.as_usize();
        let mut outs = Vec::new();
        for (b, batch) in batches.iter().enumerate() {
            if p == straggler && b == 0 {
                continue;
            }
            outs.extend(engines[i].handle(
                Time::ZERO,
                EngineInput::BatchStored(batch.clone()),
                &mut rngs[i],
            ));
        }
        outs.extend(engines[i].handle(
            Time::ZERO,
            EngineInput::SubmitDigests(vec![batch_digest(&batches[i])]),
            &mut rngs[i],
        ));
        route(p, &outs, &mut wire, &mut fetches);
        if engines[i].current_round() == Round::GENESIS && !engines[i].is_started() {
            let outs = engines[i].start(Time::ZERO, &mut rngs[i]);
            route(p, &outs, &mut wire, &mut fetches);
        }
    }
    let mut t = 0u64;
    while !wire.is_empty() || !fetches.is_empty() {
        while let Some((from, to, payload)) = wire.pop_front() {
            t += 1;
            let i = to.as_usize();
            let outs = engines[i].handle(
                Time::new(t),
                EngineInput::Message { from, payload },
                &mut rngs[i],
            );
            route(to, &outs, &mut wire, &mut fetches);
        }
        // Serve the fetch requests the drained wire produced: deliver the
        // requested batches to the requester at a strictly later tick.
        while let Some((requester, digests)) = fetches.pop_front() {
            let i = requester.as_usize();
            for digest in digests {
                let Some(batch) = batches.iter().find(|b| batch_digest(b) == digest).cloned()
                else {
                    continue;
                };
                t += 1;
                let outs =
                    engines[i].handle(Time::new(t), EngineInput::BatchStored(batch), &mut rngs[i]);
                route(requester, &outs, &mut wire, &mut fetches);
            }
        }
    }

    let auditor = DagAuditor::new(committee);
    for p in committee.members() {
        let i = p.as_usize();
        assert!(!engines[i].ordered().is_empty(), "{p}: ordered nothing");
        assert_eq!(engines[i].ordered().len(), engines[0].ordered().len());
        let records: Vec<TraceRecord> = engines[i].tracer().records();
        assert!(engines[i].tracer().is_enabled());
        let ordered_digests =
            records.iter().filter(|r| matches!(r.event, TraceEvent::DigestOrdered { .. })).count();
        assert!(ordered_digests >= 4, "{p}: only {ordered_digests} digests ordered in trace");
        let violations = auditor.audit_trace(&records);
        assert!(violations.is_empty(), "{p}: digest trace audit failed: {violations:?}");
    }
    assert!(engines[straggler.as_usize()].fetches_sent() > 0, "straggler never fetched");
    let straggler_records = engines[straggler.as_usize()].tracer().records();
    assert!(
        straggler_records.iter().any(|r| matches!(r.event, TraceEvent::BatchFetchRequested { .. })),
        "straggler trace has no fetch request"
    );
    assert!(
        straggler_records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::BatchResolved { waited, .. } if waited > 0)),
        "straggler trace shows no waited resolution"
    );

    // Strip the resolution records: every digest the straggler ordered now
    // dangles, and the auditor must say so.
    let tampered: Vec<TraceRecord> = straggler_records
        .iter()
        .filter(|r| !matches!(r.event, TraceEvent::BatchResolved { .. }))
        .cloned()
        .collect();
    let violations = auditor.audit_trace(&tampered);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            InvariantViolation::UnresolvedOrderedDigest { process, .. } if *process == straggler
        )),
        "tampered trace not flagged: {violations:?}"
    );
}

/// Client-admission observability: monotone cumulative samples audit
/// clean and surface in the report's per-process traffic columns, and a
/// later sample regressing any counter (records reordered, dropped, or
/// fabricated) is flagged as `NonMonotoneAdmission`.
#[test]
fn admission_samples_audit_clean_and_regressions_are_flagged() {
    use dag_rider::analysis::InvariantViolation;
    use dag_rider::simnet::Metrics;
    use dag_rider::types::{ProcessId, Time};

    let process = ProcessId::new(2);
    let sample = |seq: u64, accepted: u64, coalesced: u64, shed: u64, qhw: u64| TraceRecord {
        seq,
        at: Time::new(seq),
        process,
        event: TraceEvent::ClientAdmission { accepted, coalesced, shed, queue_high_water: qhw },
    };
    let auditor = DagAuditor::new(Committee::new(4).unwrap());

    // Non-decreasing samples (equality allowed: an idle tick re-samples
    // the same totals) audit clean.
    let clean = vec![sample(0, 10, 8, 0, 3), sample(1, 64, 60, 2, 9), sample(2, 64, 60, 2, 9)];
    let violations = auditor.audit_trace(&clean);
    assert!(violations.is_empty(), "monotone admission samples flagged: {violations:?}");

    // The report carries the final cumulative totals as traffic columns.
    let report = TraceReport::build(&clean, &Metrics::new(4), Time::new(3));
    let row = report
        .per_process
        .iter()
        .find(|p| p.process == process)
        .expect("admission samples must create a traffic row");
    assert_eq!(row.client_accepted, 64);
    assert_eq!(row.client_coalesced, 60);
    assert_eq!(row.client_shed, 2);
    assert_eq!(row.client_queue_high_water, 9);
    let rendered = report.to_string();
    assert!(rendered.contains("accepted"), "{rendered}");
    assert!(rendered.contains("qhw"), "{rendered}");

    // A regressing counter must be flagged, naming the counter and both
    // samples.
    let tampered = vec![sample(0, 10, 8, 5, 3), sample(1, 64, 60, 2, 9)];
    let violations = auditor.audit_trace(&tampered);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            InvariantViolation::NonMonotoneAdmission {
                process: p,
                counter: "shed",
                value: 2,
                previous: 5,
            } if *p == process
        )),
        "regressing shed counter not flagged: {violations:?}"
    );
    // Counters that did not regress are not flagged.
    assert_eq!(violations.len(), 1, "{violations:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random schedules and committee sizes: the whole observability
    /// contract holds, not just on the curated seeds.
    #[test]
    fn traces_clean_under_random_schedules(
        seed in 0u64..10_000,
        max_delay in 2u64..20,
        wide in proptest::prelude::any::<bool>(),
    ) {
        let n = if wide { 7 } else { 4 };
        check_run(n, seed, max_delay);
    }
}
