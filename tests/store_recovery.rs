//! Kill-and-restart equivalence: a process restarted from its durable
//! store must rebuild a **byte-identical prefix** of the ordered log it
//! had delivered before the crash.
//!
//! The suite runs a real four-engine agreement (the in-test FIFO driver,
//! no simulator) with one node recording its durable event stream, then
//! pins three properties over that stream:
//!
//! * **full replay** — replaying every event into a fresh engine rebuilds
//!   the exact ordered log ([`DagAuditor::audit_recovery`] with
//!   `expect_complete`),
//! * **snapshot + tail replay** — a mid-run [`StoreSnapshot`] plus the
//!   post-capture tail rebuilds the same log, pinning the compaction
//!   path,
//! * **crash-point matrix** — for *every* prefix of the stream (a crash
//!   between any two appends), replay audits clean, never double-orders,
//!   and never delivers anything the pre-crash run did not.
//!
//! A final group drives the same events through a real [`DurableStore`]
//! on disk with injected faults at several append boundaries, and checks
//! the auditor actually fires on doctored logs (divergence, payload
//! mismatch, lost delivery).

use std::collections::VecDeque;
use std::fs;
use std::path::PathBuf;

use dag_rider::analysis::{DagAuditor, InvariantViolation};
use dag_rider::core::{
    DagRiderEngine, DurableEvent, EngineInput, EngineOutput, NodeConfig, OrderedVertex,
};
use dag_rider::crypto::deal_coin_keys;
use dag_rider::rbc::BrachaRbc;
use dag_rider::store::{
    replay_into, DurableStore, FaultKind, FaultPlan, FsyncPolicy, StoreSnapshot,
};
use dag_rider::types::{
    Block, Committee, Encode, ProcessId, SeqNum, Time, Transaction, VertexRef, Wave,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 7;
const OBSERVER: usize = 0;

/// Everything the crash-recovery properties need from one pre-crash run:
/// the observer node's durable stream, a mid-run snapshot with the count
/// of events drained before its capture, and the ordered log to compare
/// recovered logs against.
struct Recorded {
    committee: Committee,
    events: Vec<DurableEvent>,
    snapshot: StoreSnapshot,
    snapshot_at: usize,
    ordered: Vec<OrderedVertex>,
}

/// Runs four engines to agreement through an instant-delivery FIFO wire,
/// with the observer node recording durable events. A snapshot of the
/// observer is captured the first time its ordered log is non-empty.
fn record_run(seed: u64) -> Recorded {
    let committee = Committee::new(4).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = deal_coin_keys(&committee, &mut rng);
    let config = NodeConfig::default().with_max_round(16);
    let mut engines: Vec<DagRiderEngine<BrachaRbc>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderEngine::new(committee, p, k, config.clone()))
        .collect();
    engines[OBSERVER].set_durable_recording(true);
    let mut rngs: Vec<StdRng> = (0..4).map(|i| StdRng::seed_from_u64(100 + i)).collect();
    let tx = Transaction::synthetic(seed, 16);
    engines[2].enqueue_block(Block::new(ProcessId::new(2), SeqNum::new(1), vec![tx]));

    let mut events: Vec<DurableEvent> = Vec::new();
    let mut snapshot: Option<(usize, StoreSnapshot)> = None;
    let mut wire: VecDeque<(ProcessId, ProcessId, Vec<u8>)> = VecDeque::new();
    let mut clock = 0u64;
    let route = |from: ProcessId,
                 outs: Vec<EngineOutput>,
                 wire: &mut VecDeque<(ProcessId, ProcessId, Vec<u8>)>| {
        for out in outs {
            match out {
                EngineOutput::Send { to, payload } => {
                    wire.push_back((from, to, payload.to_vec()));
                }
                EngineOutput::Broadcast { payload } => {
                    for to in committee.others(from) {
                        wire.push_back((from, to, payload.to_vec()));
                    }
                }
                EngineOutput::SetTimer { .. }
                | EngineOutput::Ordered(_)
                | EngineOutput::FetchBatches { .. } => {}
            }
        }
    };
    for p in committee.members() {
        let outs = engines[p.as_usize()].start(Time::new(clock), &mut rngs[p.as_usize()]);
        route(p, outs, &mut wire);
    }
    events.extend(engines[OBSERVER].drain_durable_events());
    while let Some((from, to, payload)) = wire.pop_front() {
        clock += 1;
        let input = EngineInput::Message { from, payload };
        let outs = engines[to.as_usize()].handle(Time::new(clock), input, &mut rngs[to.as_usize()]);
        route(to, outs, &mut wire);
        if to.as_usize() == OBSERVER {
            events.extend(engines[OBSERVER].drain_durable_events());
            // Mirror the runtime's single-producer discipline: capture
            // only after draining, so the snapshot supersedes exactly
            // the events recorded so far.
            if snapshot.is_none() && !engines[OBSERVER].ordered().is_empty() {
                snapshot = Some((events.len(), StoreSnapshot::capture(&engines[OBSERVER])));
            }
        }
    }
    let ordered = engines[OBSERVER].ordered().to_vec();
    assert!(!ordered.is_empty(), "the run must order something to be worth recovering");
    let (snapshot_at, snapshot) = snapshot.expect("a snapshot must have been captured mid-run");
    assert!(snapshot_at < events.len(), "events must continue past the snapshot capture");
    Recorded { committee, events, snapshot, snapshot_at, ordered }
}

/// A fresh observer engine: same committee, identity, coin key, and
/// config as the pre-crash run — what a restarting process constructs.
fn fresh_observer(committee: Committee) -> DagRiderEngine<BrachaRbc> {
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(SEED));
    let key = keys.into_iter().nth(OBSERVER).unwrap();
    let config = NodeConfig::default().with_max_round(16);
    DagRiderEngine::new(committee, ProcessId::new(OBSERVER as u32), key, config)
}

/// Replays a snapshot + tail into a fresh observer and returns it with
/// the `Ordered` outputs its replay emitted.
fn recover(
    committee: Committee,
    snapshot: Option<&StoreSnapshot>,
    tail: &[DurableEvent],
) -> (DagRiderEngine<BrachaRbc>, Vec<OrderedVertex>) {
    let mut engine = fresh_observer(committee);
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let mut replayed = Vec::new();
    replay_into(&mut engine, snapshot, tail, Time::ZERO, &mut rng, |out| {
        if let EngineOutput::Ordered(o) = out {
            replayed.push(o);
        }
    });
    (engine, replayed)
}

/// Byte-identity of two ordered logs on the replicated axes: the vertex
/// reference and the block bytes. (`delivered_at` / `committed_in_wave`
/// are local observations and may legitimately differ.)
fn assert_logs_identical(expected: &[OrderedVertex], got: &[OrderedVertex]) {
    assert_eq!(expected.len(), got.len(), "log lengths differ");
    for (i, (a, b)) in expected.iter().zip(got).enumerate() {
        assert_eq!(a.vertex, b.vertex, "position {i}: different vertex");
        assert_eq!(a.block.to_bytes(), b.block.to_bytes(), "position {i}: different block bytes");
    }
}

#[test]
fn full_wal_replay_rebuilds_the_exact_ordered_log() {
    let run = record_run(SEED);
    let (engine, replayed) = recover(run.committee, None, &run.events);
    assert_logs_identical(&run.ordered, &replayed);
    assert_logs_identical(&run.ordered, engine.ordered());
    let report = DagAuditor::new(run.committee).audit_recovery(
        engine.dag(),
        &run.ordered,
        engine.ordered(),
        true,
    );
    assert!(report.is_empty(), "recovery audit must be clean: {report:?}");
}

#[test]
fn snapshot_plus_tail_replay_rebuilds_the_exact_ordered_log() {
    let run = record_run(SEED);
    let tail = &run.events[run.snapshot_at..];
    let (engine, _) = recover(run.committee, Some(&run.snapshot), tail);
    assert_logs_identical(&run.ordered, engine.ordered());
    let report = DagAuditor::new(run.committee).audit_recovery(
        engine.dag(),
        &run.ordered,
        engine.ordered(),
        true,
    );
    assert!(report.is_empty(), "snapshot recovery audit must be clean: {report:?}");
}

#[test]
fn every_crash_point_recovers_a_clean_prefix() {
    // A crash between any two appends loses a suffix of the stream but
    // must never lose prefix-consistency: the recovered log is a prefix
    // of the pre-crash log, with nothing reordered, duplicated, or
    // invented. This is the store's whole safety contract.
    let run = record_run(SEED);
    let auditor = DagAuditor::new(run.committee);
    let mut last_len = 0usize;
    for cut in 0..=run.events.len() {
        let (engine, _) = recover(run.committee, None, &run.events[..cut]);
        let recovered = engine.ordered();
        assert!(
            recovered.len() <= run.ordered.len(),
            "crash at {cut}: recovered more than was ever delivered"
        );
        assert_logs_identical(&run.ordered[..recovered.len()], recovered);
        assert!(
            recovered.len() >= last_len,
            "crash at {cut}: a longer prefix recovered fewer deliveries"
        );
        last_len = recovered.len();
        let report = auditor.audit_recovery(engine.dag(), &run.ordered, recovered, false);
        assert!(report.is_empty(), "crash at {cut}: audit must be clean: {report:?}");
    }
    assert_eq!(last_len, run.ordered.len(), "the full stream must recover the full log");
}

#[test]
fn faulted_stores_on_disk_recover_clean_prefixes() {
    // The same property through real files: append the recorded stream
    // into a DurableStore with a fault armed at an append boundary,
    // reopen, replay what survived, and audit.
    let run = record_run(SEED);
    let auditor = DagAuditor::new(run.committee);
    let boundaries = [1u64, 5, run.events.len() as u64 / 2, run.events.len() as u64 - 1];
    let faults = [FaultKind::Crash, FaultKind::Torn { keep: 5 }, FaultKind::BitFlip { bit: 13 }];
    for (case, (&at_append, &kind)) in
        boundaries.iter().flat_map(|b| faults.iter().map(move |f| (b, f))).enumerate()
    {
        let dir = scratch_dir(&format!("fault-{case}"));
        {
            let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::EveryN(4)).unwrap();
            store.set_fault(FaultPlan { at_append, kind });
            for event in &run.events {
                store.append(event).unwrap();
                store.commit().unwrap();
            }
            assert!(store.is_dead(), "case {case}: fault must have fired");
        }
        let (_, recovered) = DurableStore::open(&dir, FsyncPolicy::EveryN(4)).unwrap();
        assert_eq!(
            recovered.tail,
            run.events[..at_append as usize],
            "case {case}: the intact prefix and nothing else must survive"
        );
        if matches!(kind, FaultKind::Crash) {
            assert!(recovered.wal_defect.is_none(), "case {case}: clean crash leaves no defect");
        } else {
            assert!(recovered.wal_defect.is_some(), "case {case}: damage must be classified");
        }
        let (engine, _) = recover(run.committee, None, &recovered.tail);
        let report = auditor.audit_recovery(engine.dag(), &run.ordered, engine.ordered(), false);
        assert!(report.is_empty(), "case {case}: audit must be clean: {report:?}");
        assert_logs_identical(&run.ordered[..engine.ordered().len()], engine.ordered());
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn the_auditor_fires_on_doctored_recovery_logs() {
    let run = record_run(SEED);
    let (engine, _) = recover(run.committee, None, &run.events);
    let auditor = DagAuditor::new(run.committee);
    let clean = engine.ordered().to_vec();
    assert!(clean.len() >= 2, "need at least two deliveries to doctor");

    // Swapped entries: divergence at the first swapped position.
    let mut swapped = clean.clone();
    swapped.swap(0, 1);
    let report = auditor.audit_recovery(engine.dag(), &run.ordered, &swapped, true);
    assert!(
        report.iter().any(|v| matches!(v, InvariantViolation::RecoveryLogDivergence { .. })),
        "swapped log must report divergence: {report:?}"
    );

    // Same vertex, different block bytes: payload mismatch.
    let mut forged = clean.clone();
    forged[0].block =
        Block::new(ProcessId::new(3), SeqNum::new(99), vec![Transaction::synthetic(999, 8)]);
    let report = auditor.audit_recovery(engine.dag(), &run.ordered, &forged, true);
    assert!(
        report.iter().any(|v| matches!(v, InvariantViolation::RecoveryPayloadMismatch { .. })),
        "forged block must report a payload mismatch: {report:?}"
    );

    // A truncated log after a *complete* recovery: lost delivery.
    let truncated = &clean[..clean.len() - 1];
    let report = auditor.audit_recovery(engine.dag(), &run.ordered, truncated, true);
    assert!(
        report.iter().any(|v| matches!(v, InvariantViolation::RecoveryLostDelivery { .. })),
        "short complete log must report a lost delivery: {report:?}"
    );
    // ...but the same truncation audits clean when incompleteness is
    // the contract (store-only replay of an unsynced suffix).
    let report = auditor.audit_recovery(engine.dag(), &run.ordered, truncated, false);
    assert!(report.is_empty(), "incomplete-tolerant audit must accept a clean prefix");

    // Duplicate delivery is caught regardless of the reference log.
    let mut duplicated = clean.clone();
    let repeat = duplicated[0].clone();
    duplicated.push(repeat);
    let report = auditor.audit_recovery(engine.dag(), &run.ordered, &duplicated, false);
    assert!(
        report.iter().any(|v| matches!(v, InvariantViolation::DuplicateOrdered { .. })),
        "re-delivery must be reported: {report:?}"
    );
}

#[test]
fn replay_commits_waves_in_order_and_exactly_once() {
    // Replay drives the engine through its normal input path, so the
    // broadcast layer may emit echo traffic (the runtime drops it; peers
    // saw the originals long ago) — but the *ordering* side must be a
    // clean rebuild: waves commit monotonically, every delivery streams
    // through the sink exactly once, and the rebuilt log matches.
    let run = record_run(SEED);
    let mut engine = fresh_observer(run.committee);
    let mut rng = StdRng::seed_from_u64(1);
    let mut streamed: Vec<OrderedVertex> = Vec::new();
    replay_into(
        &mut engine,
        Some(&run.snapshot),
        &run.events[run.snapshot_at..],
        Time::ZERO,
        &mut rng,
        |out| {
            if let EngineOutput::Ordered(o) = out {
                streamed.push(o);
            }
        },
    );
    let waves: Vec<Wave> = streamed.iter().map(|o| o.committed_in_wave).collect();
    assert!(
        waves.windows(2).all(|w| w[0] <= w[1]),
        "replay committed waves out of order: {waves:?}"
    );
    // The streamed deliveries and the queryable log agree exactly — no
    // delivery is duplicated into the sink or withheld from it.
    assert_logs_identical(engine.ordered(), &streamed);
    let refs: Vec<VertexRef> = engine.ordered().iter().map(|o| o.vertex).collect();
    let expected: Vec<VertexRef> = run.ordered.iter().map(|o| o.vertex).collect();
    assert_eq!(refs, expected);
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dagrider-store-recovery-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}
