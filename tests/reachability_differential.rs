//! Differential proptests of the closure-bitset reachability engine
//! against the BFS oracle it replaced.
//!
//! Random DAGs — ragged participation, random strong-edge subsets, weak
//! edges, Byzantine equivocation attempts, and `prune_below`
//! interleavings — are driven through both implementations, and every
//! query family must agree exactly:
//!
//! * `path` / `strong_path` vs the oracle BFS, over all vertex pairs;
//! * `causal_history` vs the oracle's reachable set (plus the ascending
//!   `(round, source)` delivery-order contract the ordering layer relies
//!   on);
//! * `orphans_below` vs the oracle scan, for every frontier tried;
//! * `DagAuditor::audit_reachability` stays clean — and fires once a
//!   closure bit is deliberately poisoned.

use dag_rider::analysis::{DagAuditor, InvariantViolation};
use dag_rider::core::Dag;
use dag_rider::types::{Block, Committee, Round, SeqNum, Vertex, VertexBuilder, VertexRef};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// Picks a random subset of `pool` with at least `min` elements.
fn subset(rng: &mut StdRng, pool: &[VertexRef], min: usize) -> Vec<VertexRef> {
    let mut picked: Vec<VertexRef> = pool.to_vec();
    while picked.len() > min && rng.random_bool(0.3) {
        let out = rng.random_range(0..picked.len());
        picked.remove(out);
    }
    picked
}

/// Grows `dag` by `rounds` further rounds of randomly ragged
/// participation: each round a random subset (≥ quorum, so the DAG can
/// keep advancing) of processes produces a vertex with a random
/// quorum-or-larger strong-edge subset of the previous round, plus an
/// occasional weak edge to a random older retained vertex. Every inserted
/// vertex keeps the DAG causally closed. Equivocation attempts — a second
/// vertex for an occupied `(round, source)` slot — are injected and must
/// be rejected without disturbing the engine.
fn grow(dag: &mut Dag, rng: &mut StdRng, rounds: u64) {
    let committee = dag.committee();
    let quorum = committee.quorum();
    let start = dag.highest_round().number() + 1;
    for r in start..start + rounds {
        let round = Round::new(r);
        let prev_round = Round::new(r - 1);
        let prev: Vec<VertexRef> =
            dag.round_vertices(prev_round).keys().map(|&p| VertexRef::new(prev_round, p)).collect();
        if prev.len() < quorum {
            return; // can't legally extend a starved round
        }
        let older: Vec<VertexRef> = dag
            .iter()
            .map(Vertex::reference)
            .filter(|v| v.round.number() + 1 < r && v.round != Round::GENESIS)
            .collect();
        for p in committee.members() {
            if dag.round_size(round) >= quorum && rng.random_bool(0.25) {
                continue; // this process sits the round out
            }
            let mut builder = VertexBuilder::new(p, round, Block::empty(p, SeqNum::new(r)))
                .strong_edges(subset(rng, &prev, quorum));
            if !older.is_empty() && rng.random_bool(0.5) {
                builder = builder.weak_edges([older[rng.random_range(0..older.len())]]);
            }
            assert!(dag.insert(builder.build_unchecked()));
            if rng.random_bool(0.2) {
                // A Byzantine twin for the occupied slot must bounce off.
                let twin = VertexBuilder::new(p, round, Block::empty(p, SeqNum::new(r + 999)))
                    .strong_edges(prev.clone())
                    .build_unchecked();
                assert!(!dag.insert(twin), "equivocation for an occupied slot must be rejected");
            }
        }
    }
}

/// Asserts engine ≡ oracle on every query family, over all vertex pairs.
fn assert_equivalent(dag: &Dag) {
    let refs: Vec<VertexRef> = dag.iter().map(Vertex::reference).collect();
    for &from in &refs {
        for &to in &refs {
            assert_eq!(dag.path(from, to), dag.oracle_path(from, to), "path({from} -> {to})");
            assert_eq!(
                dag.strong_path(from, to),
                dag.oracle_strong_path(from, to),
                "strong_path({from} -> {to})"
            );
        }
        // Same membership as the oracle BFS, already in delivery order.
        let history = dag.causal_history(from);
        let engine_set: BTreeSet<VertexRef> = history.iter().copied().collect();
        let oracle_set: BTreeSet<VertexRef> = dag.oracle_causal_history(from).into_iter().collect();
        assert_eq!(engine_set, oracle_set, "causal_history({from})");
        assert_eq!(history.len(), engine_set.len(), "no duplicates in causal_history");
        let mut sorted = history.clone();
        sorted.sort_by_key(|r| (r.round, r.source));
        assert_eq!(history, sorted, "causal_history is in ascending (round, source) order");
    }
    // Orphan scans from every round's frontier, at every cutoff the
    // construction layer could pass.
    for r in 1..=dag.highest_round().number() {
        let frontier: Vec<VertexRef> = dag
            .round_vertices(Round::new(r))
            .keys()
            .map(|&p| VertexRef::new(Round::new(r), p))
            .collect();
        for below in [r.saturating_sub(2), r.saturating_sub(1)] {
            assert_eq!(
                dag.orphans_below(&frontier, Round::new(below)),
                dag.oracle_orphans_below(&frontier, Round::new(below)),
                "orphans_below(round {r} frontier, below {below})"
            );
        }
    }
    // The auditor's differential invariant agrees.
    let divergences = DagAuditor::for_dag(dag).audit_reachability(dag);
    assert_eq!(divergences, Vec::new());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Engine ≡ oracle on randomly grown DAGs with ragged participation,
    /// weak edges, and equivocation attempts.
    #[test]
    fn engine_matches_oracle_on_random_dags(seed in 0u64..10_000, big in proptest::bool::ANY) {
        let n = if big { 7 } else { 4 };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dag = Dag::new(Committee::new(n).expect("3f + 1"));
        grow(&mut dag, &mut rng, 8);
        assert_equivalent(&dag);
    }

    /// Engine ≡ oracle across `prune_below` interleavings: grow, prune at
    /// a random floor (recheck), then keep growing above the floor
    /// (recheck again) — closures recomposed by the prune-time rebuild and
    /// closures composed fresh after it must both agree with the oracle.
    #[test]
    fn engine_matches_oracle_under_pruning(seed in 0u64..10_000, floor in 2u64..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dag = Dag::new(Committee::new(4).expect("4 = 3f + 1"));
        grow(&mut dag, &mut rng, 8);
        let stragglers: Vec<Vertex> = dag
            .round_vertices(Round::new(floor - 1))
            .values()
            .cloned()
            .collect();
        dag.prune_below(Round::new(floor));
        assert_equivalent(&dag);
        // Re-delivering a collected vertex must be refused, not resurrected.
        for vertex in stragglers {
            assert!(!dag.insert(vertex), "stragglers below the floor are rejected");
        }
        grow(&mut dag, &mut rng, 4);
        assert_equivalent(&dag);
    }

    /// Completeness: flipping a single closure bit anywhere makes the
    /// auditor report a `ReachabilityDivergence` naming that exact query.
    #[test]
    fn auditor_catches_any_poisoned_bit(seed in 0u64..10_000, strong in proptest::bool::ANY) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dag = Dag::new(Committee::new(4).expect("4 = 3f + 1"));
        grow(&mut dag, &mut rng, 6);
        let refs: Vec<VertexRef> = dag.iter().map(Vertex::reference).collect();
        let uppers: Vec<VertexRef> =
            refs.iter().copied().filter(|r| r.round != Round::GENESIS).collect();
        let of = uppers[rng.random_range(0..uppers.len())];
        // The poisoned bit must concern a present, strictly lower-round
        // target — the only bits a query can observe.
        let lowers: Vec<VertexRef> =
            refs.iter().copied().filter(|r| r.round < of.round).collect();
        let target = lowers[rng.random_range(0..lowers.len())];
        assert!(dag.poison_reachability_for_tests(of, target, strong));
        let divergences = DagAuditor::for_dag(&dag).audit_reachability(&dag);
        assert!(
            divergences.iter().any(|d| matches!(
                d,
                InvariantViolation::ReachabilityDivergence { from, to, strong_only, .. }
                    if *from == of && *to == target && *strong_only == strong
            )),
            "poisoned ({of} -> {target}, strong={strong}) must be reported, got {divergences:?}"
        );
    }
}
