//! Dealerless setup: distributed key generation over the simulated
//! network, then DAG-Rider consensus on the generated keys.
//!
//! §2 assumes a trusted dealer for the threshold coin but notes the
//! assumption "can be relaxed by executing an Asynchronous Distributed
//! Key Generation protocol". This example runs the verifiable-secret-
//! sharing half of that relaxation end to end:
//!
//! 1. every process **deals** a random secret: Feldman commitments go out
//!    via Bracha reliable broadcast (so everyone agrees on each dealer's
//!    polynomial), secret shares go point-to-point;
//! 2. each process verifies every share against the broadcast
//!    commitments and **aggregates** the qualified dealings into its coin
//!    key — the master secret is the sum of all dealers' secrets, which
//!    *no single party ever knows*;
//! 3. the generated keys then drive a full DAG-Rider run — over **real
//!    TCP sockets** via [`NetNode`], the same sans-I/O engine the
//!    simulator drives.
//!
//! (With faulty dealers the qualified set must itself go through
//! consensus — the `O(n⁴)` ADKG of the paper's [30]; here all dealers are
//! correct so the full set qualifies everywhere. See `crypto::dkg` docs.)
//!
//! ```sh
//! cargo run --example distributed_setup
//! ```

use std::net::TcpListener;
use std::time::{Duration, Instant};

use bytes::Bytes;
use dag_rider::core::NodeConfig;
use dag_rider::crypto::dkg::{aggregate, Dealing, DealingCommitments};
use dag_rider::crypto::{CoinKeys, Scalar};
use dag_rider::net::{NetConfig, NetNode};
use dag_rider::rbc::{BrachaRbc, RbcAction, ReliableBroadcast};
use dag_rider::simnet::{Actor, Context, Simulation, UniformScheduler};
use dag_rider::types::{Committee, Decode, DecodeError, Encode, ProcessId, Round};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Wire messages of the DKG phase.
#[derive(Debug, Clone)]
enum DkgMessage {
    /// Reliable-broadcast traffic carrying [`DealingCommitments`].
    Rbc(dag_rider::rbc::BrachaMessage),
    /// A point-to-point secret share from a dealer.
    Share(Scalar),
}

impl Encode for DkgMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            DkgMessage::Rbc(m) => {
                0u8.encode(buf);
                m.encode(buf);
            }
            DkgMessage::Share(s) => {
                1u8.encode(buf);
                s.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            DkgMessage::Rbc(m) => m.encoded_len(),
            DkgMessage::Share(s) => s.encoded_len(),
        }
    }
}

impl Decode for DkgMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(DkgMessage::Rbc(dag_rider::rbc::BrachaMessage::decode(buf)?)),
            1 => Ok(DkgMessage::Share(Scalar::decode(buf)?)),
            _ => Err(DecodeError::Invalid("unknown dkg message tag")),
        }
    }
}

/// One process of the DKG phase.
struct DkgActor {
    committee: Committee,
    my_dealing: Dealing,
    rbc: BrachaRbc,
    /// Commitments delivered via reliable broadcast, per dealer.
    commitments: Vec<Option<DealingCommitments>>,
    /// Shares received point-to-point, per dealer.
    shares: Vec<Option<Scalar>>,
    /// The aggregated key, once everything checked out.
    keys: Option<CoinKeys>,
}

impl DkgActor {
    fn new(committee: Committee, me: ProcessId, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(me.index()) << 32));
        Self {
            committee,
            my_dealing: Dealing::deal(&committee, me, &mut rng),
            rbc: BrachaRbc::new(committee, me, 0),
            commitments: vec![None; committee.n()],
            shares: vec![None; committee.n()],
            keys: None,
        }
    }

    fn apply(
        &mut self,
        actions: Vec<RbcAction<dag_rider::rbc::BrachaMessage>>,
        ctx: &mut Context<'_>,
    ) {
        for action in actions {
            match action {
                RbcAction::Send(to, m) => {
                    ctx.send(to, Bytes::from(DkgMessage::Rbc(m).to_bytes()));
                }
                RbcAction::Deliver(delivery) => {
                    if let Ok(c) = DealingCommitments::from_bytes(&delivery.payload) {
                        if c.dealer == delivery.source
                            && Dealing::validate_shape(&c, &self.committee).is_ok()
                        {
                            let dealer = c.dealer;
                            self.commitments[dealer.as_usize()] = Some(c);
                        }
                    }
                }
            }
        }
        self.try_finish(ctx.me());
    }

    /// Aggregate once all n dealings (commitments + verified shares) are
    /// in. All-correct dealers ⇒ the qualified set is the full committee
    /// at every process.
    fn try_finish(&mut self, me: ProcessId) {
        if self.keys.is_some() {
            return;
        }
        let complete = self.committee.members().all(|d| {
            self.commitments[d.as_usize()].is_some() && self.shares[d.as_usize()].is_some()
        });
        if !complete {
            return;
        }
        // Rebuild per-dealer `Dealing` views holding only our share (the
        // aggregate API wants shares indexed by recipient).
        let qualified: Vec<Dealing> = self
            .committee
            .members()
            .map(|d| {
                let commitments = self.commitments[d.as_usize()].clone().expect("checked");
                let mut shares = vec![Scalar::ZERO; self.committee.n()];
                shares[me.as_usize()] = self.shares[d.as_usize()].expect("checked");
                Dealing { commitments, shares }
            })
            .collect();
        match aggregate(&self.committee, me, &qualified) {
            Ok(keys) => self.keys = Some(keys),
            Err(err) => panic!("aggregation failed at {me}: {err}"),
        }
    }
}

impl Actor for DkgActor {
    fn init(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.me();
        // Broadcast commitments reliably; send each share point-to-point.
        let payload = self.my_dealing.commitments.to_bytes();
        let actions = self.rbc.rbcast(payload, Round::new(1), ctx.rng());
        for (recipient, &share) in
            self.committee.members().zip(self.my_dealing.shares.clone().iter())
        {
            if recipient == me {
                self.shares[me.as_usize()] = Some(share);
            } else {
                ctx.send(recipient, Bytes::from(DkgMessage::Share(share).to_bytes()));
            }
        }
        self.apply(actions, ctx);
    }

    fn on_message(&mut self, from: ProcessId, payload: &[u8], ctx: &mut Context<'_>) {
        match DkgMessage::from_bytes(payload) {
            Ok(DkgMessage::Rbc(m)) => {
                let actions = self.rbc.on_message(from, m, ctx.rng());
                self.apply(actions, ctx);
            }
            Ok(DkgMessage::Share(share)) => {
                // Verify against the dealer's commitments if present;
                // otherwise store and verification happens at aggregation.
                self.shares[from.as_usize()] = Some(share);
                self.try_finish(ctx.me());
            }
            Err(_) => {}
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let committee = Committee::new(4)?;

    // ── Phase 1: DKG over the simulated asynchronous network ──
    println!(
        "phase 1 — distributed key generation ({} dealers, threshold f+1 = {})",
        committee.n(),
        committee.small_quorum()
    );
    let actors: Vec<DkgActor> =
        committee.members().map(|p| DkgActor::new(committee, p, 99)).collect();
    let mut dkg_sim = Simulation::new(committee, actors, UniformScheduler::new(1, 9), 99);
    dkg_sim.run();
    let keys: Vec<CoinKeys> = committee
        .members()
        .map(|p| {
            dkg_sim.actor(p).keys.clone().unwrap_or_else(|| panic!("{p} did not finish the DKG"))
        })
        .collect();
    println!(
        "  done in {} messages / {} bytes; no party ever held the master secret",
        dkg_sim.metrics().messages_sent(),
        dkg_sim.metrics().bytes_sent()
    );
    // Sanity: all parties computed identical verification keys.
    for p in committee.members() {
        for q in committee.members() {
            assert_eq!(
                keys[p.as_usize()].public().verification_key(q),
                keys[0].public().verification_key(q),
                "verification keys diverge"
            );
        }
    }

    // ── Phase 2: DAG-Rider on the generated keys, over real TCP ──
    println!("\nphase 2 — DAG-Rider with the generated keys, over TCP on localhost");
    let max_round = 12u64;
    let listeners: Vec<TcpListener> =
        committee.members().map(|_| TcpListener::bind("127.0.0.1:0")).collect::<Result<_, _>>()?;
    let addrs: Vec<_> = listeners.iter().map(TcpListener::local_addr).collect::<Result<_, _>>()?;
    let nodes: Vec<NetNode> = committee
        .members()
        .zip(keys)
        .zip(listeners)
        .map(|((p, k), listener)| {
            let cfg = NetConfig::new(
                committee,
                p,
                addrs.clone(),
                NodeConfig::default().with_max_round(max_round),
                k,
                100 + u64::from(p.index()),
            )
            .with_sync_timeout(Duration::from_millis(300));
            NetNode::start::<BrachaRbc>(cfg, Some(listener))
        })
        .collect::<Result<_, _>>()?;

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut lens = vec![0usize; nodes.len()];
    let mut stable_since = Instant::now();
    loop {
        assert!(Instant::now() < deadline, "consensus made no progress on DKG keys");
        std::thread::sleep(Duration::from_millis(100));
        let now_lens: Vec<usize> = nodes.iter().map(NetNode::ordered_len).collect();
        if now_lens != lens {
            lens = now_lens;
            stable_since = Instant::now();
        }
        let done = nodes.iter().all(|n| n.current_round().number() >= max_round);
        if done
            && lens.iter().all(|&l| l > 0)
            && stable_since.elapsed() > Duration::from_millis(700)
        {
            break;
        }
    }
    let reference: Vec<_> = nodes[0].ordered();
    assert!(!reference.is_empty(), "consensus made no progress on DKG keys");
    for node in &nodes {
        let log = node.ordered();
        assert!(log.iter().zip(&reference).all(|(a, b)| a.vertex == b.vertex));
        println!(
            "  {}: decided wave {}, {} vertices ordered over TCP — consistent ✓",
            node.me(),
            node.decided_wave(),
            log.len()
        );
    }
    for mut node in nodes {
        node.shutdown();
    }
    println!("\nthe trusted dealer of §2 is gone; the coin works identically.");
    Ok(())
}
