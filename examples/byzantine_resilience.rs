//! Fault injection: DAG-Rider keeps ordering with `f` processes crashed
//! or silent-Byzantine, and starved processes' proposals still get
//! ordered thanks to weak edges (the paper's Validity property).
//!
//! ```sh
//! cargo run --example byzantine_resilience
//! ```

use dag_rider::core::NodeConfig;
use dag_rider::crypto::deal_coin_keys;
use dag_rider::rbc::{byzantine::SilentActor, BrachaRbc};
use dag_rider::simactor::DagRiderNode;
use dag_rider::simnet::{Either, Simulation, TargetedScheduler, UniformScheduler};
use dag_rider::types::{Block, Committee, ProcessId, SeqNum, Transaction};
use rand::rngs::StdRng;
use rand::SeedableRng;

type Node = DagRiderNode<BrachaRbc>;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    crash_scenario()?;
    silent_byzantine_scenario()?;
    starved_process_scenario()?;
    Ok(())
}

/// f = 1 process crashes mid-run (with its in-flight messages dropped by
/// the adaptive adversary); the survivors keep committing waves.
fn crash_scenario() -> Result<(), Box<dyn std::error::Error>> {
    println!("— crash fault —");
    let committee = Committee::new(4)?;
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(1));
    let config = NodeConfig::default().with_max_round(24);
    let nodes: Vec<Node> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 8), 1);
    // Let the protocol make some progress, then crash p3.
    sim.run_until(400, |_| false);
    sim.crash(ProcessId::new(3), true);
    println!("  crashed p3 at {} after 400 events", sim.now());
    sim.run();
    for p in committee.members().filter(|p| p.index() != 3) {
        let node = sim.actor(p);
        println!(
            "  {p}: decided wave {}, {} vertices ordered",
            node.decided_wave(),
            node.ordered().len()
        );
        assert!(node.decided_wave().number() >= 1, "{p} must keep committing");
    }
    Ok(())
}

/// f = 1 process is Byzantine-mute from the start: it never broadcasts
/// vertices or coin shares. Rounds still advance on 2f + 1 vertices.
fn silent_byzantine_scenario() -> Result<(), Box<dyn std::error::Error>> {
    println!("— silent Byzantine process —");
    let committee = Committee::new(4)?;
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(2));
    let config = NodeConfig::default().with_max_round(24);
    let byz = ProcessId::new(0);
    let nodes: Vec<Either<Node, SilentActor>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| {
            if p == byz {
                Either::Right(SilentActor)
            } else {
                Either::Left(DagRiderNode::new(committee, p, k, config.clone()))
            }
        })
        .collect();
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 8), 2);
    sim.mark_byzantine(byz);
    sim.run();
    for p in committee.members().filter(|&p| p != byz) {
        let node = sim.actor(p).as_left().expect("honest node");
        println!(
            "  {p}: decided wave {}, {} vertices ordered",
            node.decided_wave(),
            node.ordered().len()
        );
        assert!(node.decided_wave().number() >= 1);
        // Nothing from the mute process can be ordered — it proposed nothing.
        assert!(node.ordered().iter().all(|o| o.vertex.source != byz));
    }
    Ok(())
}

/// A correct-but-slow process is starved by the adversary for a while: its
/// vertices arrive too late for strong edges, yet weak edges make sure its
/// block is eventually ordered (Validity / eventual fairness, Table 1).
fn starved_process_scenario() -> Result<(), Box<dyn std::error::Error>> {
    println!("— starved process (weak-edge validity) —");
    let committee = Committee::new(4)?;
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(3));
    let config = NodeConfig::default().with_max_round(32);
    let victim = ProcessId::new(2);
    let mut nodes: Vec<Node> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();
    let marker = Transaction::synthetic(0xFEED, 32);
    nodes[victim.as_usize()].a_bcast(Block::new(victim, SeqNum::new(1), vec![marker.clone()]));

    // The adversary slows every link touching the victim for an initial
    // window (long enough that rounds pass it by, short enough that the
    // finite run still has waves left to pick its vertex up via weak
    // edges — in an infinite run any finite starvation works).
    let scheduler = TargetedScheduler::new(UniformScheduler::new(1, 6), [victim], 200)
        .with_window(dag_rider::simnet::Time::ZERO, dag_rider::simnet::Time::new(200));
    let mut sim = Simulation::new(committee, nodes, scheduler, 3);
    sim.run();

    for p in committee.members() {
        let node = sim.actor(p);
        let ordered_marker =
            node.ordered().iter().any(|o| o.block.transactions().contains(&marker));
        println!(
            "  {p}: {} vertices ordered, victim's block ordered: {ordered_marker}",
            node.ordered().len()
        );
        assert!(ordered_marker, "{p} must order the starved process's block");
    }
    println!("  validity holds: the starved process's proposal was ordered everywhere");
    Ok(())
}
