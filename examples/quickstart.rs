//! Quickstart: run a 4-process DAG-Rider committee twice — first over a
//! simulated asynchronous network, then over real TCP sockets — and
//! watch every process deliver the same totally ordered sequence of
//! blocks both times.
//!
//! The protocol itself lives in one place: the sans-I/O
//! [`DagRiderEngine`](dag_rider::core::DagRiderEngine). The simulation
//! drives it through the [`DagRiderNode`] adapter; the socket run drives
//! the *same engine* through [`NetNode`]. Nothing protocol-level changes
//! between the two halves of this example.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::net::TcpListener;
use std::time::{Duration, Instant};

use dag_rider::core::NodeConfig;
use dag_rider::crypto::deal_coin_keys;
use dag_rider::net::{NetConfig, NetNode};
use dag_rider::rbc::BrachaRbc;
use dag_rider::simactor::DagRiderNode;
use dag_rider::simnet::{Simulation, UniformScheduler};
use dag_rider::types::{Block, Committee, ProcessId, SeqNum, Transaction};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A committee of n = 3f + 1 = 4 processes tolerating f = 1 fault.
    let committee = Committee::new(4)?;
    println!("committee: {committee}");

    // 2. Trusted-dealer setup for the threshold common coin (§2).
    let mut rng = StdRng::seed_from_u64(2021);
    let keys = deal_coin_keys(&committee, &mut rng);

    // 3. One DAG-Rider node per process, over Bracha reliable broadcast.
    //    `max_round` bounds the run so the simulation quiesces.
    let config = NodeConfig::default().with_max_round(24);
    let mut nodes: Vec<DagRiderNode<BrachaRbc>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();

    // 4. Each process atomically broadcasts a few client transactions.
    for (i, node) in nodes.iter_mut().enumerate() {
        for seq in 1..=3u64 {
            let tx = Transaction::synthetic((i as u64) << 8 | seq, 48);
            node.a_bcast(Block::new(node.me(), SeqNum::new(seq), vec![tx]));
        }
    }

    // 5. Run to quiescence on an adversarially schedulable network
    //    (uniform random delays here — seed it differently and the
    //    schedule changes, but never the agreed order).
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 10), 2021);
    sim.run();

    // 6. Inspect: all processes delivered the same order.
    let reference: Vec<_> = sim.actor(ProcessId::new(0)).ordered().to_vec();
    println!(
        "\np0 delivered {} vertices across {} waves:",
        reference.len(),
        sim.actor(ProcessId::new(0)).decided_wave()
    );
    for o in reference.iter().take(12) {
        println!("  {} (committed in {}, {} txs)", o.vertex, o.committed_in_wave, o.block.len());
    }
    if reference.len() > 12 {
        println!("  … and {} more", reference.len() - 12);
    }

    for p in sim.committee().members() {
        let log = sim.actor(p).ordered();
        let common = log.len().min(reference.len());
        assert_eq!(
            log[..common].iter().map(|o| o.vertex).collect::<Vec<_>>(),
            reference[..common].iter().map(|o| o.vertex).collect::<Vec<_>>(),
            "total order violated at {p}"
        );
        println!("{p}: {:>3} vertices delivered — consistent ✓", log.len());
    }

    println!(
        "\nnetwork: {} messages, {} bytes, {:.1} asynchronous time units",
        sim.metrics().messages_sent(),
        sim.metrics().bytes_sent(),
        sim.metrics().time_units(sim.now()),
    );

    // 7. Now the same engine over real TCP: four in-process nodes on
    //    localhost ephemeral ports. Each `NetNode` spawns its own
    //    transport threads; the engine inside is byte-for-byte the one
    //    the simulation just drove.
    println!("\n── the same engine over real TCP sockets ──");
    let max_round = 12u64;
    let keys = deal_coin_keys(&committee, &mut rng);
    let listeners: Vec<TcpListener> =
        committee.members().map(|_| TcpListener::bind("127.0.0.1:0")).collect::<Result<_, _>>()?;
    let addrs: Vec<_> = listeners.iter().map(TcpListener::local_addr).collect::<Result<_, _>>()?;
    let tcp_nodes: Vec<NetNode> = committee
        .members()
        .zip(keys)
        .zip(listeners)
        .map(|((p, k), listener)| {
            let cfg = NetConfig::new(
                committee,
                p,
                addrs.clone(),
                NodeConfig::default().with_max_round(max_round),
                k,
                2021 + u64::from(p.index()),
            )
            .with_sync_timeout(Duration::from_millis(300));
            NetNode::start::<BrachaRbc>(cfg, Some(listener))
        })
        .collect::<Result<_, _>>()?;
    let tx = Transaction::synthetic(7, 48);
    tcp_nodes[1].submit(Block::new(ProcessId::new(1), SeqNum::new(1), vec![tx]));

    // Wait until every node exhausted its rounds and the logs stabilize.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut lens = vec![0usize; tcp_nodes.len()];
    let mut stable_since = Instant::now();
    loop {
        assert!(Instant::now() < deadline, "TCP cluster failed to quiesce");
        std::thread::sleep(Duration::from_millis(100));
        let now_lens: Vec<usize> = tcp_nodes.iter().map(NetNode::ordered_len).collect();
        if now_lens != lens {
            lens = now_lens;
            stable_since = Instant::now();
        }
        let done = tcp_nodes.iter().all(|n| n.current_round().number() >= max_round);
        if done
            && lens.iter().all(|&l| l > 0)
            && stable_since.elapsed() > Duration::from_millis(700)
        {
            break;
        }
    }
    let tcp_reference: Vec<_> = tcp_nodes[0].ordered().iter().map(|o| o.vertex).collect();
    for node in &tcp_nodes {
        let log: Vec<_> = node.ordered().iter().map(|o| o.vertex).collect();
        assert_eq!(log, tcp_reference, "total order violated at {} over TCP", node.me());
        println!("{}: {:>3} vertices delivered over TCP — consistent ✓", node.me(), log.len());
    }
    for mut node in tcp_nodes {
        node.shutdown();
    }
    Ok(())
}
