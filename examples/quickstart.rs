//! Quickstart: run a 4-process DAG-Rider committee over a simulated
//! asynchronous network and watch every process deliver the same totally
//! ordered sequence of blocks.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dag_rider::core::{DagRiderNode, NodeConfig};
use dag_rider::crypto::deal_coin_keys;
use dag_rider::rbc::BrachaRbc;
use dag_rider::simnet::{Simulation, UniformScheduler};
use dag_rider::types::{Block, Committee, ProcessId, SeqNum, Transaction};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A committee of n = 3f + 1 = 4 processes tolerating f = 1 fault.
    let committee = Committee::new(4)?;
    println!("committee: {committee}");

    // 2. Trusted-dealer setup for the threshold common coin (§2).
    let mut rng = StdRng::seed_from_u64(2021);
    let keys = deal_coin_keys(&committee, &mut rng);

    // 3. One DAG-Rider node per process, over Bracha reliable broadcast.
    //    `max_round` bounds the run so the simulation quiesces.
    let config = NodeConfig::default().with_max_round(24);
    let mut nodes: Vec<DagRiderNode<BrachaRbc>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();

    // 4. Each process atomically broadcasts a few client transactions.
    for (i, node) in nodes.iter_mut().enumerate() {
        for seq in 1..=3u64 {
            let tx = Transaction::synthetic((i as u64) << 8 | seq, 48);
            node.a_bcast(Block::new(node.me(), SeqNum::new(seq), vec![tx]));
        }
    }

    // 5. Run to quiescence on an adversarially schedulable network
    //    (uniform random delays here — seed it differently and the
    //    schedule changes, but never the agreed order).
    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 10), 2021);
    sim.run();

    // 6. Inspect: all processes delivered the same order.
    let reference: Vec<_> = sim.actor(ProcessId::new(0)).ordered().to_vec();
    println!(
        "\np0 delivered {} vertices across {} waves:",
        reference.len(),
        sim.actor(ProcessId::new(0)).decided_wave()
    );
    for o in reference.iter().take(12) {
        println!("  {} (committed in {}, {} txs)", o.vertex, o.committed_in_wave, o.block.len());
    }
    if reference.len() > 12 {
        println!("  … and {} more", reference.len() - 12);
    }

    for p in sim.committee().members() {
        let log = sim.actor(p).ordered();
        let common = log.len().min(reference.len());
        assert_eq!(
            log[..common].iter().map(|o| o.vertex).collect::<Vec<_>>(),
            reference[..common].iter().map(|o| o.vertex).collect::<Vec<_>>(),
            "total order violated at {p}"
        );
        println!("{p}: {:>3} vertices delivered — consistent ✓", log.len());
    }

    println!(
        "\nnetwork: {} messages, {} bytes, {:.1} asynchronous time units",
        sim.metrics().messages_sent(),
        sim.metrics().bytes_sent(),
        sim.metrics().time_units(sim.now()),
    );
    Ok(())
}
