//! A replicated token ledger on top of DAG-Rider — the §3 architecture:
//! BAB sequences opaque transactions; an execution engine above it
//! validates and applies them (invalid transactions are sequenced but
//! rejected identically everywhere).
//!
//! Seven replicas each batch their clients' transfers into blocks, DAG-Rider
//! totally orders them, and every replica's ledger converges to the same
//! balances — including identical rejection of the double-spends.
//!
//! ```sh
//! cargo run --example blockchain_smr
//! ```

use std::collections::BTreeMap;

use dag_rider::core::{NodeConfig, OrderedVertex};
use dag_rider::crypto::deal_coin_keys;
use dag_rider::rbc::AvidRbc;
use dag_rider::simactor::DagRiderNode;
use dag_rider::simnet::{Simulation, UniformScheduler};
use dag_rider::types::{
    Block, Committee, Decode, DecodeError, Encode, ProcessId, SeqNum, Transaction,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// An application-level transfer, serialized into BAB transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Transfer {
    from: u32,
    to: u32,
    amount: u64,
}

impl Encode for Transfer {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.from.encode(buf);
        self.to.encode(buf);
        self.amount.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.from.encoded_len() + self.to.encoded_len() + self.amount.encoded_len()
    }
}

impl Decode for Transfer {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self { from: u32::decode(buf)?, to: u32::decode(buf)?, amount: u64::decode(buf)? })
    }
}

/// The deterministic execution engine: applies ordered transfers,
/// rejecting overdrafts.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Ledger {
    balances: BTreeMap<u32, u64>,
    applied: usize,
    rejected: usize,
}

impl Ledger {
    fn new(accounts: u32, initial: u64) -> Self {
        Self { balances: (0..accounts).map(|a| (a, initial)).collect(), applied: 0, rejected: 0 }
    }

    fn execute(&mut self, ordered: &[OrderedVertex]) {
        for vertex in ordered {
            for tx in vertex.block.transactions() {
                match Transfer::from_bytes(tx.payload()) {
                    Ok(t) if self.balances.get(&t.from).copied().unwrap_or(0) >= t.amount => {
                        *self.balances.entry(t.from).or_insert(0) -= t.amount;
                        *self.balances.entry(t.to).or_insert(0) += t.amount;
                        self.applied += 1;
                    }
                    _ => self.rejected += 1, // overdraft or malformed: rejected deterministically
                }
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let committee = Committee::new(7)?;
    let mut rng = StdRng::seed_from_u64(4242);
    let keys = deal_coin_keys(&committee, &mut rng);
    let config = NodeConfig::default().with_max_round(28);

    // AVID broadcast: the communication-optimal Table 1 instantiation,
    // right for payload-heavy blockchain workloads.
    let mut nodes: Vec<DagRiderNode<AvidRbc>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();

    // Clients submit transfers to their local replica; some are
    // double-spends that the execution layer must reject.
    let accounts = 10u32;
    let mut submitted = 0usize;
    for node in nodes.iter_mut() {
        for seq in 1..=4u64 {
            let txs: Vec<Transaction> = (0..5)
                .map(|_| {
                    let transfer = Transfer {
                        from: rng.random_range(0..accounts),
                        to: rng.random_range(0..accounts),
                        // Occasionally try to move more than any account holds.
                        amount: if rng.random_range(0..10u32) == 0 {
                            1_000_000
                        } else {
                            rng.random_range(1..50u64)
                        },
                    };
                    submitted += 1;
                    Transaction::new(transfer.to_bytes())
                })
                .collect();
            node.a_bcast(Block::new(node.me(), SeqNum::new(seq), txs));
        }
    }
    println!("submitted {submitted} transfers across {} replicas", committee.n());

    let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 12), 4242);
    sim.run();

    // Execute the agreed order on each replica's ledger.
    let mut ledgers: Vec<Ledger> = Vec::new();
    for p in committee.members() {
        let mut ledger = Ledger::new(accounts, 100);
        ledger.execute(sim.actor(p).ordered());
        ledgers.push(ledger);
    }

    // Replicas that delivered the same prefix have identical ledgers; in a
    // quiesced fault-free run all logs are equal.
    let reference = &ledgers[0];
    for (i, ledger) in ledgers.iter().enumerate() {
        assert_eq!(ledger, reference, "replica {i} diverged");
    }
    let total: u64 = reference.balances.values().sum();
    println!(
        "all {} replicas converged: {} applied, {} rejected (double-spends), total supply {} (conserved: {})",
        committee.n(),
        reference.applied,
        reference.rejected,
        total,
        total == u64::from(accounts) * 100,
    );
    assert_eq!(total, u64::from(accounts) * 100, "token supply must be conserved");

    println!(
        "network: {} bytes for {} ordered vertices",
        sim.metrics().bytes_sent(),
        sim.actor(ProcessId::new(0)).ordered().len()
    );
    Ok(())
}
