//! Renders a live DAG-Rider DAG in the style of the paper's Figure 1 —
//! lanes per process, columns per round, `●k` marking a vertex with `k`
//! strong edges, `~` marking attached weak edges, `○` a hole — plus a
//! Graphviz DOT dump for pretty rendering.
//!
//! ```sh
//! cargo run --example dag_visualizer            # ASCII
//! cargo run --example dag_visualizer -- --dot   # DOT on stdout
//! ```

use dag_rider::core::{render, NodeConfig};
use dag_rider::crypto::deal_coin_keys;
use dag_rider::rbc::BrachaRbc;
use dag_rider::simactor::DagRiderNode;
use dag_rider::simnet::{Simulation, TargetedScheduler, Time, UniformScheduler};
use dag_rider::types::{Committee, ProcessId, Round};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dot_mode = std::env::args().any(|a| a == "--dot");

    let committee = Committee::new(4)?;
    let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(11));
    let config = NodeConfig::default().with_max_round(12);
    let nodes: Vec<DagRiderNode<BrachaRbc>> = committee
        .members()
        .zip(keys)
        .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
        .collect();

    // Slow p3 for a while so weak edges appear, as in Figure 1.
    let scheduler = TargetedScheduler::new(UniformScheduler::new(1, 6), [ProcessId::new(3)], 120)
        .with_window(Time::ZERO, Time::new(300));
    let mut sim = Simulation::new(committee, nodes, scheduler, 11);
    sim.run();

    let observer = ProcessId::new(0);
    let dag = sim.actor(observer).dag();

    if dot_mode {
        print!("{}", render::dot(dag));
        return Ok(());
    }

    println!("DAG as seen by {observer} (cf. paper Figure 1):");
    println!("  ●k = vertex with k strong edges, ~ = has weak edges, ○ = not (yet) delivered\n");
    print!("{}", render::ascii(dag, Round::new(1), dag.highest_round()));

    println!("\nper-wave outcomes at {observer}:");
    for commit in sim.actor(observer).commits() {
        println!("  {} leader {} — {:?}", commit.wave, commit.leader, commit.outcome);
    }
    println!(
        "\n{} vertices, {} ordered, decided wave {}",
        dag.len(),
        sim.actor(observer).ordered().len(),
        sim.actor(observer).decided_wave()
    );
    println!("\n(run with --dot for Graphviz output)");
    Ok(())
}
