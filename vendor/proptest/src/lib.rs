//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment of this repository has no network access to
//! crates.io, so the workspace vendors the property-testing surface it
//! consumes:
//!
//! * the [`proptest!`] macro wrapping `fn name(arg in strategy, ..)` test
//!   bodies, with `#![proptest_config(..)]` support;
//! * [`Strategy`] implementations for integer/float ranges, [`any`] for
//!   primitives, tuples, [`collection::vec`] and [`collection::btree_set`],
//!   and [`bool::ANY`];
//! * [`prop_assert!`] / [`prop_assert_eq!`], which report the failing case
//!   number alongside the assertion.
//!
//! Cases are generated deterministically: test name and case index seed the
//! generator, so failures reproduce without a persistence file. Shrinking
//! is not implemented — the failing inputs are printed instead, which the
//! workspace's small strategies keep readable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::ops::{Range, RangeFrom, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Everything a `proptest!` call site needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// The deterministic case generator handed to strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The generator for one `(test, case)` pair — fully determined by its
    /// arguments so every failure reproduces.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(seed.wrapping_add(u64::from(case).wrapping_mul(0x9e37_79b9))))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.start..=<$t>::MAX)
            }
        }
    )+};
}

impl_int_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.0.random_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.0.random_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Full-domain strategy for a primitive, `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full domain of `T` as a strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types [`any`] can generate.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_ints!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform over `{true, false}`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// The uniform boolean strategy.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            super::Arbitrary::arbitrary(rng)
        }
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{BTreeSet, Range, Strategy, TestRng};

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// A `BTreeSet` of values from `element`; `size` bounds the number of
    /// *insertion attempts*, so duplicates may make the set smaller (the
    /// real crate retries; the workspace's property bodies only need "some
    /// set within the size bound").
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let attempts = self.size.clone().sample(rng);
            (0..attempts).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body, reporting the failing
/// case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_are_bounded(x in 3u64..10, y in 0u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<u8>(), 2..5),
            s in crate::collection::btree_set(0u32..100, 1..8),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(s.len() < 8);
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 1);
        let mut b = crate::TestRng::for_case("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 2);
        assert_ne!(crate::TestRng::for_case("t", 1).next_u64(), c.next_u64());
    }
}
