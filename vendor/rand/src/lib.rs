//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment of this repository has no network access to
//! crates.io, so the workspace vendors the *exact* API surface it consumes:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256++, Blackman & Vigna 2019) with the same construction
//!   entry points the real crate offers ([`SeedableRng::seed_from_u64`],
//!   [`SeedableRng::from_seed`]);
//! * [`Rng`] — the core-generation trait (`next_u32` / `next_u64` /
//!   `fill_bytes`);
//! * [`RngExt`] — the range-sampling extension (`random_range`,
//!   `random_bool`).
//!
//! The statistical and API contracts the workspace relies on hold: streams
//! are fully determined by the seed, distinct seeds give uncorrelated
//! streams, and `random_range` is uniform over the requested range. The
//! *bit streams* differ from the real `rand::rngs::StdRng` (ChaCha12), so
//! seeds tuned against upstream `rand` produce different (but equally
//! valid) schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The random number generators.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

/// A generator that can be instantiated from a seed — the subset of the
/// real `SeedableRng` this workspace calls.
pub trait SeedableRng: Sized {
    /// The raw seed type (32 bytes for [`rngs::StdRng`]).
    type Seed;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 (the same expansion the real crate documents).
    fn seed_from_u64(state: u64) -> Self;
}

/// Core uniform generation: raw words and byte-filling.
pub trait Rng {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform bits (the high half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Range sampling, auto-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // 53 uniform mantissa bits, the standard float-from-bits recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng> RngExt for R {}

/// A range that [`RngExt::random_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value using `rng`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded draw in `[0, bound)`.
fn bounded_u64<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Rejection sampling on the top bits: unbiased and branch-cheap.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let draw = rng.next_u64();
        if draw <= zone {
            return draw % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span + 1) as $t
            }
        }
    )+};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + unit * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0u32..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw misses values: {seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(3u64..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is astronomically unlikely");
    }

    #[test]
    fn float_ranges_are_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
