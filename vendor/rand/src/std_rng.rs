//! The workspace's standard deterministic generator: xoshiro256++.

use crate::{Rng, SeedableRng};

/// A seedable deterministic generator (xoshiro256++ under the hood).
///
/// Named `StdRng` to slot into the real crate's `rand::rngs::StdRng` call
/// sites; the bit stream differs from upstream (which uses ChaCha12) but
/// every determinism and uniformity property the workspace relies on is
/// preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 — the recommended seeder for xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro requires a nonzero state; an all-zero seed is remapped
        // through SplitMix64 rather than rejected.
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        Self {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // Reference values for xoshiro256++ from the authors' C code,
        // state seeded as (1, 2, 3, 4).
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(first, vec![41943041, 58720359, 3588806011781223]);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}
