//! Vendored, dependency-free stand-in for the `bytes` crate.
//!
//! The build environment of this repository has no network access to
//! crates.io, so the workspace vendors the one type it consumes:
//! [`Bytes`], an immutable byte buffer whose `Clone` is an `Arc` bump
//! rather than a copy. That cheap-clone property is what the simulator's
//! broadcast paths rely on (one allocation per payload, `n` clones).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// `Clone` is O(1): all clones share one allocation. Dereferences to
/// `&[u8]`, so slice APIs (`len`, `to_vec`, indexing, iteration) work
/// directly. Backed by `Arc<Vec<u8>>` so that `From<Vec<u8>>` adopts the
/// vector's allocation instead of copying — encoders can build a `Vec`
/// and hand it over for free.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer (no byte allocation: an empty `Vec` does not
    /// allocate).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice. (The real crate stores the reference
    /// without copying; this stand-in copies once, which is equivalent for
    /// the workspace's metering since wire bytes are counted, not heap
    /// bytes.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self { data: Arc::new(bytes.to_vec()) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self { data: Arc::new(bytes.to_vec()) }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(bytes: Vec<u8>) -> Self {
        // Zero-copy: the Arc adopts the vector's allocation.
        Self { data: Arc::new(bytes) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(bytes: &[u8]) -> Self {
        Self { data: Arc::new(bytes.to_vec()) }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn from_vec_adopts_the_allocation() {
        let v = vec![5u8; 64];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), ptr);
    }

    #[test]
    fn derefs_to_slice() {
        let b = Bytes::from(vec![9, 8, 7]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![9, 8, 7]);
        assert_eq!(&b[1..], &[8, 7]);
    }

    #[test]
    fn static_and_empty_buffers() {
        assert_eq!(Bytes::from_static(b"hi").as_ref(), b"hi");
        assert!(Bytes::new().is_empty());
    }
}
