//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment of this repository has no network access to
//! crates.io, so the workspace vendors the benchmarking surface its
//! `benches/` targets use: [`Criterion`], [`Bencher::iter`], benchmark
//! groups, [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Methodology is intentionally simple: each benchmark warms up briefly,
//! then runs timed batches until ~200 ms of samples accumulate, and the
//! median per-iteration time is reported to stdout. No statistical
//! regression analysis, plots, or baselines — enough to compare orders of
//! magnitude and spot hot-path regressions by eye.
//!
//! Like upstream criterion, passing `--test` to the bench binary
//! (`cargo bench -- --test`) switches to smoke mode: every benchmark body
//! runs exactly once, untimed — CI uses this to keep bench targets
//! compiling and panic-free without paying for measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Whether the binary was invoked with `--test` (smoke mode: run each
/// benchmark once, untimed).
fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::args().any(|arg| arg == "--test"))
}

/// The benchmark harness handle passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as the benchmark `name`.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Runs `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.label, &mut |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of benchmarks sharing a prefix (and, upstream,
/// configuration — this stand-in accepts the configuration calls and
/// ignores them).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the harness
    /// sizes batches by wall-clock instead).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs `f` as `group_name/name`.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Runs `f` with `input`, labelled `group_name/id`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label), &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}

    /// The owning [`Criterion`] (unused by the workspace; kept so the
    /// borrow shape matches upstream).
    pub fn criterion(&mut self) -> &mut Criterion {
        self.criterion
    }
}

/// A `name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Labels a benchmark `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self { label: format!("{name}/{parameter}") }
    }

    /// Labels a benchmark by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    median_ns: f64,
    iterations: u64,
    /// Smoke mode: run the body once, untimed.
    quick: bool,
}

impl Bencher {
    /// Times `f`, retaining the median over timed batches. In `--test`
    /// smoke mode, runs `f` exactly once and records nothing.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.quick {
            black_box(f());
            self.iterations = 1;
            return;
        }
        // Warm-up: one call, also used to size batches.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        // Aim for ~20 batches of ~10ms each, capped for slow benchmarks.
        let per_batch = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000);
        let mut samples = Vec::new();
        let mut total = 0u64;
        let deadline = Instant::now() + Duration::from_millis(200);
        while Instant::now() < deadline && samples.len() < 20 {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            samples.push(elapsed.as_secs_f64() * 1e9 / per_batch as f64);
            total += per_batch as u64;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
        self.iterations = total;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let quick = quick_mode();
    let mut bencher = Bencher { median_ns: f64::NAN, iterations: 0, quick };
    f(&mut bencher);
    if quick {
        println!("test {label:<50} ... ok");
        return;
    }
    let (value, unit) = humanize(bencher.median_ns);
    println!("bench {label:<50} {value:>9.2} {unit}/iter ({} iters)", bencher.iterations);
}

fn humanize(ns: f64) -> (f64, &'static str) {
    if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else {
        (ns / 1_000_000.0, "ms")
    }
}

/// Declares a benchmark group: `criterion_group!(name, target_fn, ..)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        c.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n + 1));
        });
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs_every_shape() {
        benches();
    }

    #[test]
    fn humanize_picks_units() {
        assert_eq!(humanize(10.0).1, "ns");
        assert_eq!(humanize(10_000.0).1, "µs");
        assert_eq!(humanize(10_000_000.0).1, "ms");
    }
}
