//! # DAG-Rider — *All You Need is DAG* (PODC 2021), in Rust
//!
//! A complete reproduction of Keidar, Kokoris-Kogias, Naor & Spiegelman's
//! asynchronous Byzantine Atomic Broadcast protocol, together with every
//! substrate it stands on and the baselines it is compared against:
//!
//! * [`types`] — protocol vocabulary (processes, rounds, waves, vertices,
//!   blocks, committees, compact wire codec).
//! * [`crypto`] — from-scratch SHA-256, Merkle trees, Shamir sharing, the
//!   §2 threshold common coin (with DLEQ share verification), and
//!   Reed–Solomon erasure codes.
//! * [`simnet`] — a deterministic discrete-event simulator of the paper's
//!   asynchronous adversarial network model, with byte/time metering.
//! * [`rbc`] — the three reliable-broadcast instantiations of Table 1:
//!   Bracha, probabilistic gossip, and Cachin–Tessaro AVID.
//! * [`core`] — DAG-Rider itself as a **sans-I/O engine**: Algorithm 2
//!   (DAG construction) and Algorithm 3 (zero-overhead wave ordering)
//!   behind typed [`EngineInput`](core::EngineInput) /
//!   [`EngineOutput`](core::EngineOutput) streams, with no runtime
//!   dependency.
//! * [`simactor`] — the adapter that runs the engine inside the simulator
//!   ([`simactor::DagRiderNode`]).
//! * [`net`] — the real TCP cluster runtime: thread-per-peer transport,
//!   length-prefixed framing, reconnect backoff, and the `cluster` binary
//!   for multi-process localhost runs.
//! * [`store`] — the durable DAG store: a checksummed write-ahead log of
//!   engine-visible events plus compacted snapshots, so a killed process
//!   restarts from local state and syncs only the suffix it missed.
//! * [`trace`] — structured protocol event tracing: typed, time-stamped
//!   records of every vertex, round, coin and commit transition.
//! * [`baselines`] — VABA-based and Dumbo-based SMR for comparison.
//!
//! The most useful entry points are [`simactor::DagRiderNode`] (simulated
//! runs) and [`net::NetNode`] (real sockets); see the `examples/`
//! directory (`quickstart`, `blockchain_smr`, `byzantine_resilience`,
//! `dag_visualizer`) and the experiment binaries in `crates/bench` that
//! regenerate the paper's table and figures.
//!
//! ```
//! use dag_rider::core::NodeConfig;
//! use dag_rider::crypto::deal_coin_keys;
//! use dag_rider::rbc::AvidRbc;
//! use dag_rider::simactor::DagRiderNode;
//! use dag_rider::simnet::{Simulation, UniformScheduler};
//! use dag_rider::types::{Committee, ProcessId};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let committee = Committee::new(4)?;
//! let keys = deal_coin_keys(&committee, &mut StdRng::seed_from_u64(1));
//! let config = NodeConfig::default().with_max_round(16);
//! let nodes: Vec<DagRiderNode<AvidRbc>> = committee
//!     .members()
//!     .zip(keys)
//!     .map(|(p, k)| DagRiderNode::new(committee, p, k, config.clone()))
//!     .collect();
//! let mut sim = Simulation::new(committee, nodes, UniformScheduler::new(1, 8), 1);
//! sim.run();
//! assert!(!sim.actor(ProcessId::new(0)).ordered().is_empty());
//! # Ok::<(), dag_rider::types::CommitteeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dagrider_analysis as analysis;
pub use dagrider_baselines as baselines;
pub use dagrider_core as core;
pub use dagrider_crypto as crypto;
pub use dagrider_net as net;
pub use dagrider_rbc as rbc;
pub use dagrider_simactor as simactor;
pub use dagrider_simnet as simnet;
pub use dagrider_store as store;
pub use dagrider_trace as trace;
pub use dagrider_types as types;
